//! The per-node dataflow engine: graph construction, compilation, work
//! queue, and timers.
//!
//! # Architecture: build-time graph, compiled run-time form
//!
//! A [`Graph`] is the *construction* representation: elements plus a
//! `HashMap` of edges, convenient for the planner to assemble incrementally.
//! [`Engine::new`] consumes the graph and compiles the edges into a dense
//! adjacency table — a flat `Vec<Route>` with one contiguous span per
//! `(element, output port)` slot, addressed by `port_base[element] + port`.
//! Routing an emission is then two array loads and a slice walk; the
//! per-emission `HashMap` probe of the original engine is gone. The
//! compiled form is semantically identical to the edge map (see
//! [`Engine::routes_of`], which the property tests compare against
//! [`Graph::connect`] semantics).
//!
//! # Hot-path allocation discipline
//!
//! Element calls hand their effects to the engine through two scratch
//! buffers (`scratch_emissions`, `scratch_timers`) owned by the engine and
//! reused across every `push`/`on_timer`/`on_start` invocation, so the
//! steady-state cost of an element call allocates nothing beyond the tuples
//! it creates. Tuple fan-out across a multi-route port clones the
//! (`Arc`-backed, cheap) tuple for all but the last route, which takes the
//! original. Network sends carry `Arc<str>` destinations (see
//! [`Outgoing`]), so handing a tuple to the simulator does not allocate
//! either.
//!
//! # Batched delivery
//!
//! External drivers that have several tuples for the same node at the same
//! virtual instant use [`Engine::deliver_many`]: the batch is enqueued as a
//! whole and drained in one run-to-completion pass, amortizing the
//! per-delivery bookkeeping (one outgoing buffer, one queue drain) across
//! the batch.
//!
//! # Delta-driven scheduling
//!
//! Every emission carries a [`p2_table::DeltaKind`] (assert / retract /
//! refresh — see the *DeltaKind* section of `p2-table`'s module docs).
//! When scheduling is enabled ([`Engine::set_scheduling`], wired from
//! `PlanConfig::delta_schedule` by the planner), the engine suppresses
//! provably-useless pokes at two points:
//!
//! * **Static refresh masks** (absorb time): the planner compiles a
//!   per-element mask ([`Engine::set_refresh_masks`]) marking the entry
//!   elements of strands whose rule is refresh-transparent
//!   (`RuleClass::refresh_transparent`) *and* whose head cannot lose a
//!   TTL extension from the poke. A `Refresh`-kind emission routed at such
//!   an element is dropped at enqueue time instead of queued. The decision
//!   is purely static (rule classification), so applying it while the
//!   emission is routed — before downstream state mutates — is sound.
//! * **Dynamic wake guards** (drain time): just before invoking an
//!   element, the engine consults [`Element::would_wake`]; a `false`
//!   answer is the element's proof that the invocation would produce zero
//!   emissions, sends and state change, and the call is skipped. Guards
//!   run at invocation time (not enqueue time) because they read element
//!   state, which other queued work may change in between. Guards never
//!   evaluate RNG-bearing programs, so the node's deterministic RNG
//!   stream is untouched and sharded runs stay bit-identical.
//!
//! Both suppressions are counted ([`EngineStats::suppressed_refresh_pokes`]
//! / [`EngineStats::suppressed_guard_pokes`] and the profiler's per-element
//! suppressed counter) so the wasted-poke audit distinguishes "never ran"
//! from "ran and wasted". With scheduling off (the default for raw
//! engines) every tuple is delivered exactly as before.
//!
//! The engine is instantiated per node, but the *plan* it executes can be
//! shared: see `p2_core::PlannedProgram`, which compiles an OverLog program
//! once into element specs plus this module's edge list, and stamps out
//! per-node engines cheaply.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use p2_obs::{NodeObs, ObsMeta, TraceEvent};
use p2_pel::EvalContext;
use p2_table::DeltaKind;
use p2_value::{SimTime, Tuple, Value};

use crate::element::{Element, ElementCtx, Outgoing};

/// An input port of an element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Route {
    /// Element index in the graph.
    pub element: usize,
    /// Input port number on that element.
    pub port: usize,
}

/// A dataflow graph under construction: elements plus directed edges from
/// output ports to input ports.
///
/// An output port may be connected to several input ports; the engine
/// duplicates tuples across them (the explicit `Dup` element of the paper's
/// Figure 2 is folded into the edge representation).
#[derive(Default)]
pub struct Graph {
    elements: Vec<Box<dyn Element>>,
    names: Vec<Arc<str>>,
    edges: HashMap<(usize, usize), Vec<Route>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Adds an element, returning its index.
    pub fn add(&mut self, name: impl Into<Arc<str>>, element: Box<dyn Element>) -> usize {
        self.elements.push(element);
        self.names.push(name.into());
        self.elements.len() - 1
    }

    /// Connects `from`'s output port `out_port` to `to`'s input port `in_port`.
    pub fn connect(&mut self, from: usize, out_port: usize, to: usize, in_port: usize) {
        self.edges.entry((from, out_port)).or_default().push(Route {
            element: to,
            port: in_port,
        });
    }

    /// Number of elements in the graph.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the graph has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Human-readable description of the graph (element classes and edges),
    /// used by the examples and for debugging planner output.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.elements.iter().enumerate() {
            out.push_str(&format!("[{i}] {} ({})\n", self.names[i], e.class()));
        }
        let mut edges: Vec<(&(usize, usize), &Vec<Route>)> = self.edges.iter().collect();
        edges.sort_by_key(|(k, _)| **k);
        for ((from, port), routes) in edges {
            for r in routes {
                out.push_str(&format!("  {from}:{port} -> {}:{}\n", r.element, r.port));
            }
        }
        out
    }
}

/// Counters describing engine activity (used by benchmarks and experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Tuples pushed into element input ports.
    pub handoffs: u64,
    /// Tuples injected from outside (network arrivals, application events)
    /// that actually entered the graph.
    pub injected: u64,
    /// Tuples delivered while no entry port was configured; they never
    /// entered the graph and are *not* counted in `injected`.
    pub dropped_no_entry: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Tuples handed to the network.
    pub sent: u64,
    /// Pokes dropped at enqueue time by the planner-compiled static
    /// refresh masks (a `Refresh`-kind emission routed at a
    /// refresh-transparent strand entry). Zero with scheduling off.
    pub suppressed_refresh_pokes: u64,
    /// Pokes skipped at invocation time by a [`Element::would_wake`]
    /// guard proving the call a no-op. Zero with scheduling off.
    pub suppressed_guard_pokes: u64,
}

#[derive(Debug, PartialEq, Eq)]
struct TimerEntry {
    fire_at: SimTime,
    seq: u64,
    element: usize,
    token: u64,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.fire_at, self.seq).cmp(&(other.fire_at, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The per-node execution engine.
///
/// The engine owns the compiled dataflow graph, a FIFO work queue of pending
/// `(route, tuple)` deliveries, and a timer heap. External drivers (the
/// network simulator or a unit test) interact with it through four calls:
/// [`Engine::start`], [`Engine::deliver`] / [`Engine::deliver_many`], and
/// [`Engine::advance_to`]; each returns the tuples the node wants
/// transmitted.
pub struct Engine {
    elements: Vec<Box<dyn Element>>,
    names: Vec<Arc<str>>,
    /// `port_base[e]` is the flat slot index of element `e`'s output port 0;
    /// `port_base[e + 1] - port_base[e]` is the number of connected output
    /// ports recorded for `e`. One trailing entry marks the total.
    port_base: Vec<usize>,
    /// Per-slot `(start, end)` span into `routes`.
    route_spans: Vec<(u32, u32)>,
    /// All routes, concatenated in slot order; connect-call order is
    /// preserved within a slot.
    routes: Vec<Route>,
    entry: Option<Route>,
    queue: VecDeque<(Route, Tuple)>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    eval: EvalContext,
    now: SimTime,
    stats: EngineStats,
    started: bool,
    /// Whether delta-driven scheduling (static refresh masks + dynamic
    /// wake guards) is active. Off by default so raw engines and unit
    /// graphs behave exactly as before; the planner turns it on from
    /// `PlanConfig::delta_schedule`.
    scheduling: bool,
    /// Planner-compiled static suppression mask, indexed by element id:
    /// `true` means `Refresh`-kind emissions routed at this element are
    /// dropped at enqueue time. Empty (no suppression) unless the planner
    /// installed masks via [`Engine::set_refresh_masks`].
    refresh_masks: Vec<bool>,
    /// Reused emission buffer: filled by one element call, drained by
    /// `absorb`, never reallocated in steady state.
    scratch_emissions: Vec<(usize, Tuple, DeltaKind)>,
    /// Reused timer-request buffer, same lifecycle.
    scratch_timers: Vec<(u64, SimTime)>,
    /// Observability taps (profiler counters + provenance tracing). `None`
    /// by default: the disabled cost is one branch per element invocation,
    /// and enabling it never changes what the engine does — only what it
    /// records.
    obs: Option<Box<NodeObs>>,
}

impl Engine {
    /// Creates an engine for the node with the given address and RNG seed,
    /// compiling the graph's edge map into the dense adjacency table.
    pub fn new(graph: Graph, local_addr: impl Into<String>, seed: u64) -> Engine {
        let Graph {
            elements,
            names,
            edges,
        } = graph;

        // Output-port count per element (highest connected port + 1).
        let mut port_counts = vec![0usize; elements.len()];
        for &(e, p) in edges.keys() {
            port_counts[e] = port_counts[e].max(p + 1);
        }
        let mut port_base = Vec::with_capacity(elements.len() + 1);
        let mut total = 0usize;
        for &c in &port_counts {
            port_base.push(total);
            total += c;
        }
        port_base.push(total);

        // Lay the routes out contiguously in (element, port) order; the
        // per-slot route order is exactly the `connect` call order.
        let mut sorted: Vec<((usize, usize), Vec<Route>)> = edges.into_iter().collect();
        sorted.sort_unstable_by_key(|(k, _)| *k);
        let mut route_spans = vec![(0u32, 0u32); total];
        let mut routes = Vec::new();
        for ((e, p), rs) in sorted {
            let start = routes.len() as u32;
            routes.extend(rs);
            route_spans[port_base[e] + p] = (start, routes.len() as u32);
        }

        Engine {
            elements,
            names,
            port_base,
            route_spans,
            routes,
            entry: None,
            queue: VecDeque::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            eval: EvalContext::new(local_addr.into(), seed),
            now: SimTime::ZERO,
            stats: EngineStats::default(),
            started: false,
            scheduling: false,
            refresh_masks: Vec::new(),
            scratch_emissions: Vec::new(),
            scratch_timers: Vec::new(),
            obs: None,
        }
    }

    /// Enables the rule-level profiler using the program's compile-time
    /// element metadata (`meta` must describe this engine's elements; index
    /// `i` of the meta table corresponds to element `i`). Counters start at
    /// zero; tracing stays off until [`Engine::set_trace_tag`].
    pub fn enable_obs(&mut self, meta: Arc<ObsMeta>) {
        debug_assert_eq!(meta.len(), self.elements.len());
        let addr: Arc<str> = Arc::from(self.eval.local_addr_str());
        self.obs = Some(Box::new(NodeObs::new(meta, addr)));
    }

    /// Disables all observability taps, dropping collected state.
    pub fn disable_obs(&mut self) {
        self.obs = None;
    }

    /// The observability state, when enabled.
    pub fn obs(&self) -> Option<&NodeObs> {
        self.obs.as_deref()
    }

    /// Mutable access to the observability state, when enabled.
    pub fn obs_mut(&mut self) -> Option<&mut NodeObs> {
        self.obs.as_deref_mut()
    }

    /// Starts provenance tracing for tuples carrying `tag` in any field
    /// (content-addressed: the tag crosses the network inside the tuple).
    /// Requires [`Engine::enable_obs`] first; returns whether tracing is on.
    pub fn set_trace_tag(&mut self, tag: Value, ring_cap: usize) -> bool {
        match &mut self.obs {
            Some(obs) => {
                obs.set_trace(tag, ring_cap);
                true
            }
            None => false,
        }
    }

    /// Removes and returns buffered trace events (tracing stays enabled).
    pub fn drain_trace(&mut self) -> Vec<TraceEvent> {
        self.obs
            .as_deref_mut()
            .map(NodeObs::drain_trace)
            .unwrap_or_default()
    }

    /// Declares the input port that externally injected tuples (network
    /// arrivals, application requests) are delivered to.
    pub fn set_entry(&mut self, route: Route) {
        self.entry = Some(route);
    }

    /// Turns delta-driven scheduling on or off (see the module-level
    /// *Delta-driven scheduling* section). Off by default.
    pub fn set_scheduling(&mut self, on: bool) {
        self.scheduling = on;
    }

    /// Whether delta-driven scheduling is active.
    pub fn scheduling(&self) -> bool {
        self.scheduling
    }

    /// Installs the planner-compiled static refresh-suppression mask:
    /// `masks[e]` is `true` iff `Refresh`-kind emissions routed at element
    /// `e` may be dropped at enqueue time. Only consulted while scheduling
    /// is on; must cover every element.
    pub fn set_refresh_masks(&mut self, masks: Vec<bool>) {
        debug_assert!(masks.is_empty() || masks.len() == self.elements.len());
        self.refresh_masks = masks;
    }

    /// The node's address.
    pub fn local_addr(&self) -> String {
        self.eval.local_addr_str().to_string()
    }

    /// Current virtual time as seen by the node.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine activity counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of elements in the compiled graph.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the compiled graph has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Index of the first element with the given graph name, if any.
    pub fn element_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| &**n == name)
    }

    /// Runs `f` against element `index`, for diagnostics and equivalence
    /// gates that need to inspect element state (e.g. a `MatView`'s
    /// maintained contents) from outside the graph. Combine with
    /// [`Element::as_any_mut`] to downcast to the concrete type.
    pub fn with_element<R>(
        &mut self,
        index: usize,
        f: impl FnOnce(&mut dyn Element) -> R,
    ) -> Option<R> {
        self.elements.get_mut(index).map(|e| f(e.as_mut()))
    }

    /// The compiled routes out of `(element, out_port)`, in `connect` order.
    /// Empty for unconnected ports — the compiled equivalent of a missing
    /// edge-map entry (tuples emitted there are discarded).
    pub fn routes_of(&self, element: usize, out_port: usize) -> &[Route] {
        if element >= self.elements.len() {
            return &[];
        }
        let base = self.port_base[element];
        if out_port >= self.port_base[element + 1] - base {
            return &[];
        }
        let (start, end) = self.route_spans[base + out_port];
        &self.routes[start as usize..end as usize]
    }

    /// Human-readable description of the compiled graph (element classes and
    /// edges), identical in format to [`Graph::describe`].
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.elements.iter().enumerate() {
            out.push_str(&format!("[{i}] {} ({})\n", self.names[i], e.class()));
        }
        for e in 0..self.elements.len() {
            for p in 0..self.port_base[e + 1] - self.port_base[e] {
                for r in self.routes_of(e, p) {
                    out.push_str(&format!("  {e}:{p} -> {}:{}\n", r.element, r.port));
                }
            }
        }
        out
    }

    fn set_now(&mut self, now: SimTime) {
        if now > self.now {
            self.now = now;
        }
        self.eval.set_now(self.now);
    }

    /// Starts the engine: every element's `on_start` hook runs (emitting
    /// initial facts and scheduling periodic timers) and the resulting
    /// cascade is processed.
    pub fn start(&mut self, now: SimTime) -> Vec<Outgoing> {
        self.set_now(now);
        self.started = true;
        let mut outgoing = Vec::new();
        for idx in 0..self.elements.len() {
            {
                let mut ctx = ElementCtx::new(
                    self.now,
                    self.queue.len(),
                    &mut self.eval,
                    &mut self.scratch_emissions,
                    &mut outgoing,
                    &mut self.scratch_timers,
                );
                self.elements[idx].on_start(&mut ctx);
            }
            self.absorb(idx);
        }
        self.drain(&mut outgoing);
        self.stats.sent += outgoing.len() as u64;
        outgoing
    }

    /// Delivers an externally produced tuple (network arrival or application
    /// event) to the entry port and runs the graph to completion.
    ///
    /// With no entry port configured the tuple is dropped and counted in
    /// [`EngineStats::dropped_no_entry`]; it is not counted as injected and
    /// does not advance the node's clock.
    pub fn deliver(&mut self, tuple: Tuple, now: SimTime) -> Vec<Outgoing> {
        let Some(entry) = self.entry else {
            self.stats.dropped_no_entry += 1;
            return Vec::new();
        };
        self.set_now(now);
        self.stats.injected += 1;
        if let Some(obs) = &mut self.obs {
            if obs.tagged(&tuple) {
                obs.trace_recv(self.now, &tuple);
            }
        }
        let mut outgoing = Vec::new();
        self.queue.push_back((entry, tuple));
        self.drain(&mut outgoing);
        self.stats.sent += outgoing.len() as u64;
        outgoing
    }

    /// Delivers a batch of external tuples at the same virtual instant: the
    /// whole batch is enqueued at the entry port, then the graph runs to
    /// completion once. Equivalent to the tuples arriving back-to-back, but
    /// with the per-delivery bookkeeping (outgoing buffer, queue drain)
    /// amortized across the batch.
    pub fn deliver_many(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
        now: SimTime,
    ) -> Vec<Outgoing> {
        let Some(entry) = self.entry else {
            self.stats.dropped_no_entry += tuples.into_iter().count() as u64;
            return Vec::new();
        };
        self.set_now(now);
        let mut outgoing = Vec::new();
        let before = self.queue.len();
        for tuple in tuples {
            if let Some(obs) = &mut self.obs {
                if obs.tagged(&tuple) {
                    obs.trace_recv(self.now, &tuple);
                }
            }
            self.queue.push_back((entry, tuple));
        }
        self.stats.injected += (self.queue.len() - before) as u64;
        self.drain(&mut outgoing);
        self.stats.sent += outgoing.len() as u64;
        outgoing
    }

    /// The next time at which a timer wants to fire, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.timers.peek().map(|Reverse(t)| t.fire_at)
    }

    /// Advances virtual time to `now`, firing every timer due at or before
    /// it and processing the resulting cascades.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<Outgoing> {
        let mut outgoing = Vec::new();
        loop {
            let due = matches!(self.timers.peek(), Some(Reverse(t)) if t.fire_at <= now);
            if !due {
                break;
            }
            let Reverse(entry) = self.timers.pop().expect("peeked");
            self.set_now(entry.fire_at);
            self.stats.timers_fired += 1;
            let idx = entry.element;
            let sends_before = outgoing.len();
            let state_changed;
            {
                let mut ctx = ElementCtx::new(
                    self.now,
                    self.queue.len(),
                    &mut self.eval,
                    &mut self.scratch_emissions,
                    &mut outgoing,
                    &mut self.scratch_timers,
                );
                self.elements[idx].on_timer(entry.token, &mut ctx);
                state_changed = ctx.state_changed();
            }
            if self.obs.is_some() {
                self.record_obs_timer(idx, state_changed, sends_before, &outgoing);
            }
            self.absorb(idx);
            self.drain(&mut outgoing);
        }
        self.set_now(now);
        self.stats.sent += outgoing.len() as u64;
        outgoing
    }

    /// Routes the scratch-buffered emissions from element `idx` into the
    /// work queue (via the compiled adjacency table) and registers requested
    /// timers. Leaves both scratch buffers empty with capacity retained.
    fn absorb(&mut self, idx: usize) {
        let base = self.port_base[idx];
        let nports = self.port_base[idx + 1] - base;
        let mask_refreshes = self.scheduling && !self.refresh_masks.is_empty();
        for (port, tuple, kind) in self.scratch_emissions.drain(..) {
            // Emissions on unconnected ports are silently dropped, like
            // Click's Discard element.
            if port >= nports {
                continue;
            }
            let (start, end) = self.route_spans[base + port];
            let routes = &self.routes[start as usize..end as usize];
            if mask_refreshes && kind.is_refresh() {
                // Static suppression: drop the refresh poke at masked
                // destinations, keep routing it everywhere else.
                let mut pending: Option<Route> = None;
                for r in routes {
                    if self.refresh_masks.get(r.element).copied().unwrap_or(false) {
                        self.stats.suppressed_refresh_pokes += 1;
                        if let Some(obs) = &mut self.obs {
                            obs.record_suppressed(r.element);
                        }
                        continue;
                    }
                    if let Some(prev) = pending.replace(*r) {
                        self.queue.push_back((prev, tuple.clone()));
                    }
                }
                if let Some(r) = pending {
                    self.queue.push_back((r, tuple));
                }
            } else if let Some((last, rest)) = routes.split_last() {
                for r in rest {
                    self.queue.push_back((*r, tuple.clone()));
                }
                self.queue.push_back((*last, tuple));
            }
        }
        for (token, fire_at) in self.scratch_timers.drain(..) {
            self.timer_seq += 1;
            self.timers.push(Reverse(TimerEntry {
                fire_at,
                seq: self.timer_seq,
                element: idx,
                token,
            }));
        }
    }

    /// Processes the work queue until empty (run to completion).
    fn drain(&mut self, outgoing: &mut Vec<Outgoing>) {
        while let Some((route, tuple)) = self.queue.pop_front() {
            let idx = route.element;
            if self.scheduling && !self.elements[idx].would_wake(route.port, &tuple, &mut self.eval)
            {
                // Dynamic suppression: the element proved this invocation
                // a no-op (no emission, send, or state change possible).
                self.stats.suppressed_guard_pokes += 1;
                if let Some(obs) = &mut self.obs {
                    obs.record_suppressed(idx);
                }
                continue;
            }
            self.stats.handoffs += 1;
            let sends_before = outgoing.len();
            let state_changed;
            {
                let mut ctx = ElementCtx::new(
                    self.now,
                    self.queue.len(),
                    &mut self.eval,
                    &mut self.scratch_emissions,
                    outgoing,
                    &mut self.scratch_timers,
                );
                self.elements[idx].push(route.port, &tuple, &mut ctx);
                state_changed = ctx.state_changed();
            }
            if self.obs.is_some() {
                self.record_obs_push(idx, &tuple, state_changed, sends_before, outgoing);
            }
            self.absorb(idx);
        }
    }

    /// Observability tap for one element invocation: runs between the
    /// element call and `absorb`, while the invocation's emissions are
    /// still in the scratch buffer and its sends occupy the tail of
    /// `outgoing`. Only called when `self.obs` is `Some`.
    fn record_obs_push(
        &mut self,
        idx: usize,
        tuple: &Tuple,
        state_changed: bool,
        sends_before: usize,
        outgoing: &[Outgoing],
    ) {
        let obs = self.obs.as_deref_mut().expect("obs enabled");
        let emitted = self.scratch_emissions.len() as u64;
        let sent = (outgoing.len() - sends_before) as u64;
        obs.record_push(idx, emitted, sent, state_changed);
        if obs.tracing() {
            if obs.tagged(tuple) {
                obs.trace_fire(
                    self.now,
                    idx,
                    tuple,
                    emitted,
                    self.scratch_emissions.iter().map(|(_, t, _)| t),
                );
            }
            for o in &outgoing[sends_before..] {
                if obs.tagged(&o.tuple) {
                    obs.trace_send(self.now, &o.dst, &o.tuple);
                }
            }
        }
    }

    /// Observability tap for one timer callback, mirroring
    /// [`Engine::record_obs_push`]. Timer invocations have no input tuple,
    /// so only tagged sends are traced.
    fn record_obs_timer(
        &mut self,
        idx: usize,
        state_changed: bool,
        sends_before: usize,
        outgoing: &[Outgoing],
    ) {
        let obs = self.obs.as_deref_mut().expect("obs enabled");
        let emitted = self.scratch_emissions.len() as u64;
        let sent = (outgoing.len() - sends_before) as u64;
        obs.record_timer(idx, emitted, sent, state_changed);
        if obs.tracing() {
            for o in &outgoing[sends_before..] {
                if obs.tagged(&o.tuple) {
                    obs.trace_send(self.now, &o.dst, &o.tuple);
                }
            }
        }
    }
}

// Compile-time audit: the engine (and therefore every element behind its
// `Box<dyn Element>`s, via the `Element: Send` supertrait) must be `Send`
// so whole nodes can be sharded across the parallel simulator's worker
// threads. Any element gaining `Rc`/`RefCell`-style state breaks this
// assertion instead of breaking multi-core runs at a distance.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Engine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Element, ElementCtx};
    use p2_value::{TupleBuilder, Value};

    /// Appends a constant field to every tuple and forwards it on port 0.
    struct Tag(i64);

    impl Element for Tag {
        fn class(&self) -> &'static str {
            "Tag"
        }
        fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
            ctx.emit(0, tuple.extended(vec![Value::Int(self.0)]));
        }
    }

    /// Sends every tuple to a fixed remote address.
    struct SendAway;

    impl Element for SendAway {
        fn class(&self) -> &'static str {
            "SendAway"
        }
        fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
            ctx.send("n9", tuple.clone());
        }
    }

    /// Emits a `tick` tuple every second, up to a bound.
    struct Ticker {
        remaining: u32,
    }

    impl Element for Ticker {
        fn class(&self) -> &'static str {
            "Ticker"
        }
        fn push(&mut self, _port: usize, _tuple: &Tuple, _ctx: &mut ElementCtx<'_>) {}
        fn on_start(&mut self, ctx: &mut ElementCtx<'_>) {
            ctx.schedule(0, SimTime::from_secs(1));
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut ElementCtx<'_>) {
            ctx.emit(
                0,
                TupleBuilder::new("tick")
                    .push(ctx.now().as_secs_f64())
                    .build(),
            );
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.schedule(0, SimTime::from_secs(1));
            }
        }
    }

    #[test]
    fn pipeline_and_fanout() {
        let mut g = Graph::new();
        let a = g.add("tagA", Box::new(Tag(1)));
        let b = g.add("tagB", Box::new(Tag(2)));
        let c = g.add("send", Box::new(SendAway));
        // a fans out to b and c; b feeds c.
        g.connect(a, 0, b, 0);
        g.connect(a, 0, c, 0);
        g.connect(b, 0, c, 0);
        assert_eq!(g.len(), 3);
        assert!(g.describe().contains("Tag"));

        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: a,
            port: 0,
        });
        engine.start(SimTime::ZERO);
        let out = engine.deliver(
            TupleBuilder::new("x").push(0i64).build(),
            SimTime::from_secs(1),
        );
        // Two tuples reach the network: one via a->c, one via a->b->c.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|o| &*o.dst == "n9"));
        let arities: Vec<usize> = out.iter().map(|o| o.tuple.arity()).collect();
        assert!(arities.contains(&2) && arities.contains(&3));
        assert_eq!(engine.stats().injected, 1);
        assert!(engine.stats().handoffs >= 3);
    }

    #[test]
    fn compiled_adjacency_matches_connect_calls() {
        let mut g = Graph::new();
        let a = g.add("tagA", Box::new(Tag(1)));
        let b = g.add("tagB", Box::new(Tag(2)));
        let c = g.add("send", Box::new(SendAway));
        g.connect(a, 0, b, 0);
        g.connect(a, 0, c, 0);
        g.connect(b, 2, c, 1); // gap: port 1 of b stays unconnected
        let before = g.describe();

        let engine = Engine::new(g, "n1", 1);
        assert_eq!(
            engine.routes_of(a, 0),
            &[
                Route {
                    element: b,
                    port: 0
                },
                Route {
                    element: c,
                    port: 0
                }
            ]
        );
        assert!(engine.routes_of(b, 0).is_empty());
        assert!(engine.routes_of(b, 1).is_empty());
        assert_eq!(
            engine.routes_of(b, 2),
            &[Route {
                element: c,
                port: 1
            }]
        );
        // Out-of-range queries are empty, not a panic — including the exact
        // element-count boundary (one past the last element).
        assert!(engine.routes_of(c, 0).is_empty());
        assert!(engine.routes_of(engine.len(), 0).is_empty());
        assert!(engine.routes_of(99, 0).is_empty());
        assert!(engine.routes_of(a, 99).is_empty());
        // The compiled description matches the construction-time one.
        assert_eq!(engine.describe(), before);
        assert_eq!(engine.len(), 3);
        assert!(!engine.is_empty());
    }

    #[test]
    fn timers_fire_in_order_and_stop() {
        let mut g = Graph::new();
        let t = g.add("ticker", Box::new(Ticker { remaining: 3 }));
        let s = g.add("send", Box::new(SendAway));
        g.connect(t, 0, s, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.start(SimTime::ZERO);
        assert_eq!(engine.next_deadline(), Some(SimTime::from_secs(1)));

        let out = engine.advance_to(SimTime::from_secs(10));
        assert_eq!(out.len(), 3);
        assert_eq!(engine.next_deadline(), None);
        assert_eq!(engine.stats().timers_fired, 3);
        // The ticks carried their fire times.
        assert_eq!(out[0].tuple.field(0), &Value::Double(1.0));
        assert_eq!(out[2].tuple.field(0), &Value::Double(3.0));
    }

    #[test]
    fn unconnected_ports_drop_tuples() {
        let mut g = Graph::new();
        let a = g.add("tag", Box::new(Tag(1)));
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: a,
            port: 0,
        });
        let out = engine.deliver(TupleBuilder::new("x").build(), SimTime::ZERO);
        assert!(out.is_empty());
    }

    #[test]
    fn deliver_without_entry_counts_drops_not_injections() {
        let g = Graph::new();
        let mut engine = Engine::new(g, "n1", 1);
        let out = engine.deliver(TupleBuilder::new("x").build(), SimTime::from_secs(5));
        assert!(out.is_empty());
        // The drop is counted separately, not as an injection, and the
        // node's clock does not advance for a tuple that never entered.
        assert_eq!(engine.stats().injected, 0);
        assert_eq!(engine.stats().dropped_no_entry, 1);
        assert_eq!(engine.now(), SimTime::ZERO);

        let out = engine.deliver_many(
            vec![
                TupleBuilder::new("y").build(),
                TupleBuilder::new("z").build(),
            ],
            SimTime::from_secs(6),
        );
        assert!(out.is_empty());
        assert_eq!(engine.stats().injected, 0);
        assert_eq!(engine.stats().dropped_no_entry, 3);
    }

    #[test]
    fn deliver_many_matches_sequential_delivery_totals() {
        let build = || {
            let mut g = Graph::new();
            let a = g.add("tag", Box::new(Tag(1)));
            let s = g.add("send", Box::new(SendAway));
            g.connect(a, 0, s, 0);
            let mut engine = Engine::new(g, "n1", 1);
            engine.set_entry(Route {
                element: a,
                port: 0,
            });
            engine.start(SimTime::ZERO);
            engine
        };
        let tuples: Vec<Tuple> = (0..4)
            .map(|i| TupleBuilder::new("x").push(i as i64).build())
            .collect();

        let mut seq = build();
        let mut seq_out = Vec::new();
        for t in tuples.clone() {
            seq_out.extend(seq.deliver(t, SimTime::from_secs(1)));
        }

        let mut batched = build();
        let batch_out = batched.deliver_many(tuples, SimTime::from_secs(1));

        assert_eq!(seq_out, batch_out);
        assert_eq!(seq.stats().injected, 4);
        assert_eq!(batched.stats().injected, 4);
        assert_eq!(seq.stats().sent, batched.stats().sent);
        assert_eq!(seq.stats().handoffs, batched.stats().handoffs);
    }
}
