//! Immutable, reference-counted tuples.
//!
//! Tuples are the unit of data transfer in P2: dataflow elements pass them
//! between ports, tables store them as rows, and the network stack marshals
//! them into packets. Following the paper's design decision, tuples are
//! **completely immutable once created** and passed by reference
//! (a cheap [`Arc`] clone).

use std::fmt;
use std::sync::Arc;

use crate::error::ValueError;
use crate::value::Value;

#[derive(Debug, PartialEq, Eq, Hash)]
struct TupleInner {
    name: Arc<str>,
    values: Vec<Value>,
}

/// An immutable named tuple of [`Value`]s.
///
/// Cloning a tuple is O(1); the payload is shared.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    inner: Arc<TupleInner>,
}

impl Tuple {
    /// Creates a new tuple with the given relation name and field values.
    pub fn new(name: impl AsRef<str>, values: Vec<Value>) -> Tuple {
        Tuple {
            inner: Arc::new(TupleInner {
                name: Arc::from(name.as_ref()),
                values,
            }),
        }
    }

    /// The relation (stream or table) name this tuple belongs to.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// All field values, in order.
    pub fn values(&self) -> &[Value] {
        &self.inner.values
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.inner.values.len()
    }

    /// Returns the field at `index`, or an error if out of range.
    pub fn get(&self, index: usize) -> Result<&Value, ValueError> {
        self.inner
            .values
            .get(index)
            .ok_or(ValueError::FieldOutOfRange {
                index,
                len: self.inner.values.len(),
            })
    }

    /// Returns the field at `index`, panicking if out of range.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.arity()`. Use [`Tuple::get`] when the index
    /// is not statically known to be valid.
    pub fn field(&self, index: usize) -> &Value {
        &self.inner.values[index]
    }

    /// Builds a new tuple with the same values under a different name.
    pub fn renamed(&self, name: impl AsRef<str>) -> Tuple {
        Tuple::new(name, self.inner.values.clone())
    }

    /// Builds a new tuple consisting of the selected field indices, under the
    /// given name (a relational projection).
    pub fn project(&self, name: impl AsRef<str>, indices: &[usize]) -> Result<Tuple, ValueError> {
        let mut values = Vec::with_capacity(indices.len());
        for &i in indices {
            values.push(self.get(i)?.clone());
        }
        Ok(Tuple::new(name, values))
    }

    /// Concatenates this tuple's fields with `other`'s, producing the
    /// intermediate result of an equijoin.
    pub fn join(&self, name: impl AsRef<str>, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(self.values());
        values.extend_from_slice(other.values());
        Tuple::new(name, values)
    }

    /// Appends extra fields, producing a new tuple with the same name.
    pub fn extended(&self, extra: Vec<Value>) -> Tuple {
        let mut values = self.inner.values.clone();
        values.extend(extra);
        Tuple::new(self.inner.name.clone(), values)
    }

    /// Size in bytes of this tuple in the simulated wire encoding
    /// (see [`crate::wire`]).
    pub fn wire_size(&self) -> usize {
        crate::wire::encoded_size(self)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name())?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Incremental builder for [`Tuple`]s.
#[derive(Debug, Clone)]
pub struct TupleBuilder {
    name: String,
    values: Vec<Value>,
}

impl TupleBuilder {
    /// Starts building a tuple for relation `name`.
    pub fn new(name: impl Into<String>) -> TupleBuilder {
        TupleBuilder {
            name: name.into(),
            values: Vec::new(),
        }
    }

    /// Appends a field.
    pub fn push(mut self, v: impl Into<Value>) -> TupleBuilder {
        self.values.push(v.into());
        self
    }

    /// Finishes the tuple.
    pub fn build(self) -> Tuple {
        Tuple::new(self.name, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uint160::Uint160;

    fn sample() -> Tuple {
        TupleBuilder::new("member")
            .push("n1")
            .push("n2")
            .push(7i64)
            .push(true)
            .build()
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.name(), "member");
        assert_eq!(t.arity(), 4);
        assert_eq!(t.field(0), &Value::str("n1"));
        assert_eq!(t.get(2).unwrap(), &Value::Int(7));
        assert!(matches!(
            t.get(9),
            Err(ValueError::FieldOutOfRange { index: 9, len: 4 })
        ));
    }

    #[test]
    fn clone_is_shallow() {
        let t = sample();
        let u = t.clone();
        assert_eq!(t, u);
        assert!(Arc::ptr_eq(&t.inner, &u.inner));
    }

    #[test]
    fn projection_and_rename() {
        let t = sample();
        let p = t.project("neighbor", &[0, 1]).unwrap();
        assert_eq!(p.name(), "neighbor");
        assert_eq!(p.values(), &[Value::str("n1"), Value::str("n2")]);
        assert!(t.project("x", &[5]).is_err());

        let r = t.renamed("memberEvent");
        assert_eq!(r.name(), "memberEvent");
        assert_eq!(r.values(), t.values());
    }

    #[test]
    fn join_concatenates() {
        let a = TupleBuilder::new("lookup").push("n1").push(5i64).build();
        let b = TupleBuilder::new("node").push("n1").push(9i64).build();
        let j = a.join("joined", &b);
        assert_eq!(j.arity(), 4);
        assert_eq!(j.field(3), &Value::Int(9));
    }

    #[test]
    fn extended_appends() {
        let t = sample().extended(vec![Value::Id(Uint160::from_u64(3))]);
        assert_eq!(t.arity(), 5);
        assert_eq!(t.name(), "member");
    }

    #[test]
    fn display() {
        let t = TupleBuilder::new("succ").push("n1").push(3i64).build();
        assert_eq!(t.to_string(), "succ(n1, 3)");
    }
}
