//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! Offline builds cannot fetch the real criterion, so this crate implements
//! the subset of its API the workspace benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`black_box`], and the `criterion_group!`/`criterion_main!` macros.
//! Measurement is deliberately simple — warm up, then time batches until a
//! wall-clock budget is reached and report the mean — which is stable enough
//! to track order-of-magnitude perf trajectories in CI logs.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; the stub runs one setup per
/// measured invocation regardless, which matches `PerIteration`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per iteration.
    PerIteration,
    /// Small batches (treated as `PerIteration` by the stub).
    SmallInput,
    /// Large batches (treated as `PerIteration` by the stub).
    LargeInput,
}

/// Per-invocation timing collector handed to the closure under test.
pub struct Bencher {
    /// Total time spent inside measured routines.
    elapsed: Duration,
    /// Number of measured routine invocations.
    iters: u64,
    /// Wall-clock measurement budget.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times repeated invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (not measured).
        for _ in 0..3 {
            black_box(routine());
        }
        let wall = Instant::now();
        let mut batch = 1u64;
        while wall.elapsed() < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
            batch = (batch * 2).min(1 << 20);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        black_box(routine(input)); // warm-up
        let wall = Instant::now();
        while wall.elapsed() < self.budget || self.iters == 0 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.iters >= 10 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<50} (no iterations)");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters as f64;
        println!(
            "{name:<50} {:>14} ns/iter  ({} iters)",
            fmt_ns(ns),
            self.iters
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The top-level harness handle passed to benchmark functions.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep CI runs quick; CRITERION_BUDGET_MS overrides for local deep
        // measurement.
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(name.as_ref());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (stub: grouping only affects the printed
/// name prefix).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted and ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time for benches in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.budget = t;
        self
    }

    /// Runs and reports one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        b.report(&full);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(b.iters > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| 2, |x| x * 2, BatchSize::PerIteration)
        });
        group.finish();
    }
}
