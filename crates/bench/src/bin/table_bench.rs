//! Table storage-engine benchmark: measures the operations the PR-1
//! overhaul targets and writes the results to `BENCH_table.json` so the
//! perf trajectory is tracked from this PR on.
//!
//! Measured at 1k / 10k / 100k rows:
//!
//! * `insert_evict_ns` — insert into a table at its size bound, so every
//!   insert evicts the stalest row (seed: O(n) victim scan; now O(log n));
//! * `expire_tick_ns` — an idle expiry sweep with nothing expired (seed:
//!   O(n) full-row scan; now O(log n) staleness-queue peek);
//! * `expire_half_ns_per_row` — per-row cost of expiring half the table;
//! * `indexed_probe_ns` — secondary-index lookup walking ~rows/64 hits;
//! * `primary_get_ns` — primary-key point lookup.
//!
//! Usage: `cargo run --release --bin table_bench [-- --out PATH]`

use std::time::Instant;

use p2_bench::to_json;
use p2_table::{Table, TableSpec};
use p2_value::{SimTime, TupleBuilder, Value};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
struct SizeResult {
    rows: usize,
    insert_evict_ns: f64,
    expire_tick_ns: f64,
    expire_half_ns_per_row: f64,
    indexed_probe_ns: f64,
    primary_get_ns: f64,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    results: Vec<SizeResult>,
}

fn member(i: i64) -> p2_value::Tuple {
    TupleBuilder::new("member")
        .push("n0")
        .push(i)
        .push(i % 64)
        .build()
}

fn filled(rows: usize, lifetime_secs: u64) -> Table {
    let mut t = Table::new(
        TableSpec::new("member", vec![1])
            .with_lifetime_secs(lifetime_secs)
            .with_max_size(rows),
    );
    t.add_index(vec![2]);
    for i in 0..rows as i64 {
        t.insert(member(i), SimTime::from_secs(i as u64)).unwrap();
    }
    t
}

/// Times `op` over `iters` invocations, returning mean ns per invocation.
fn time_ns(iters: u64, mut op: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        op(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_size(rows: usize) -> SizeResult {
    let iters: u64 = match rows {
        r if r >= 100_000 => 20_000,
        r if r >= 10_000 => 50_000,
        _ => 100_000,
    };

    // Bounded insert: table is at max_size, every insert evicts.
    let mut t = filled(rows, 1 << 20);
    let base = rows as i64;
    let insert_evict_ns = time_ns(iters, |i| {
        let n = base + i as i64;
        t.insert(member(n), SimTime::from_secs(n as u64)).unwrap();
        std::hint::black_box(t.len());
    });

    // Idle expiry tick: nothing is expired.
    let mut t = filled(rows, 1 << 20);
    let expire_tick_ns = time_ns(iters, |_| {
        std::hint::black_box(t.expire_count(SimTime::from_secs(1)));
    });

    // Expiring half the rows, amortized per expired row.
    let mut t = filled(rows, rows as u64 / 2);
    let sweep = Instant::now();
    let n = t.expire_count(SimTime::from_secs(rows as u64));
    let expire_half_ns_per_row = if n > 0 {
        sweep.elapsed().as_nanos() as f64 / n as f64
    } else {
        0.0
    };

    // Indexed probe (secondary index, ~rows/64 hits each).
    let t = filled(rows, 1 << 20);
    let probe = [Value::Int(7)];
    let indexed_probe_ns = time_ns(iters.min(50_000), |_| {
        std::hint::black_box(t.lookup_iter(&[2], &probe).count());
    });

    // Primary-key point lookup.
    let primary_get_ns = time_ns(iters, |i| {
        let key = [Value::Int((i % rows as u64) as i64)];
        std::hint::black_box(t.get_ref(&key));
    });

    SizeResult {
        rows,
        insert_evict_ns,
        expire_tick_ns,
        expire_half_ns_per_row,
        indexed_probe_ns,
        primary_get_ns,
    }
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_table.json".to_string())
    };
    // Fail on an unwritable output path up front, not after a minute of
    // measurement.
    if let Err(e) = std::fs::write(&out_path, "{}") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    let mut results = Vec::new();
    for rows in [1_000usize, 10_000, 100_000] {
        eprintln!("benchmarking table storage at {rows} rows...");
        let r = bench_size(rows);
        eprintln!(
            "  insert+evict {:>10.1} ns | expiry tick {:>9.1} ns | expire/row {:>9.1} ns | \
             indexed probe {:>10.1} ns | get {:>7.1} ns",
            r.insert_evict_ns,
            r.expire_tick_ns,
            r.expire_half_ns_per_row,
            r.indexed_probe_ns,
            r.primary_get_ns
        );
        results.push(r);
    }

    let report = BenchReport {
        bench: "table_storage".to_string(),
        results,
    };
    let json = to_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
