//! Property test: pretty-printing a program and reparsing it preserves the
//! whole-program analysis — same predicate dependency graph, same per-rule
//! delta-safety classification, same diagnostics, same inferred schemas.
//!
//! Programs are drawn from a seeded generator over a small OverLog grammar
//! (materialize declarations with assorted lifetimes and keys, rules with
//! joins, negation, deletion, aggregates, assignments through the pure and
//! impure builtins, conditions, and both local and remote head locations),
//! so the roundtrip exercises every classification axis and most analyzer
//! diagnostics, not just the shipped overlay programs.

use p2_overlog::analyze::analyze;
use p2_overlog::parse_program;
use p2_overlog::pretty::program_to_string;
use proptest::prelude::*;

/// Small deterministic generator state (splitmix-style), so each proptest
/// case is a pure function of its seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Predicate pool: name and arity (location argument included).
const PREDS: &[(&str, usize)] = &[
    ("alpha", 2),
    ("beta", 3),
    ("gamma", 2),
    ("delta", 3),
    ("omega", 4),
];

const VARS: &[&str] = &["Y", "Z", "W", "V", "U"];

/// Generates one random-but-parseable OverLog program.
fn gen_program(seed: u64) -> String {
    let mut g = Gen(seed);
    let mut out = String::new();

    // Materialize a random subset of the pool with assorted lifetimes,
    // sizes, and key sets (sometimes out-of-bounds on purpose).
    for (name, arity) in PREDS {
        if !g.chance(60) {
            continue;
        }
        let lifetime = *g.pick(&["10", "120", "infinity"]);
        let size = *g.pick(&["100", "infinity"]);
        let keys = match g.below(4) {
            0 => "keys(1)".to_string(),
            1 => "keys(2)".to_string(),
            2 => format!("keys(1, {})", arity.min(&3)),
            // Rarely address a column past the arity to hit the bounds check.
            _ => format!("keys({})", arity + 3),
        };
        out.push_str(&format!(
            "materialize({name}, {lifetime}, {size}, {keys}).\n"
        ));
    }

    let nrules = 1 + g.below(5);
    for i in 0..nrules {
        let delete = g.chance(10);
        let (head_name, head_arity) = *g.pick(PREDS);

        // Body: one to three positive predicates, collocated at X.
        let nbody = 1 + g.below(2) as usize;
        let mut body: Vec<String> = Vec::new();
        let mut bound: Vec<String> = vec!["X".to_string()];
        for _ in 0..nbody {
            let (name, arity) = *g.pick(PREDS);
            let mut args: Vec<String> = vec!["X".to_string()];
            for _ in 1..arity {
                if g.chance(15) {
                    args.push(g.below(10).to_string());
                } else {
                    let v = g.pick(VARS).to_string();
                    if !bound.contains(&v) {
                        bound.push(v.clone());
                    }
                    args.push(v);
                }
            }
            body.push(format!("{name}@X({})", args.join(", ")));
        }

        // Optional negation over a pool predicate, using bound vars only.
        if g.chance(20) {
            let (name, arity) = *g.pick(PREDS);
            let mut args: Vec<String> = vec!["X".to_string()];
            for _ in 1..arity {
                args.push(g.pick(&bound).clone());
            }
            body.push(format!("not {name}@X({})", args.join(", ")));
        }

        // Optional assignment, drawing from pure and impure builtins.
        if g.chance(30) {
            let v = g.pick(&bound).clone();
            let expr = match g.below(4) {
                0 => "f_now()".to_string(),
                1 => "f_rand()".to_string(),
                2 => format!("f_sha1({v})"),
                _ => format!("{v} + 1"),
            };
            bound.push("Q".to_string());
            body.push(format!("Q := {expr}"));
        }

        // Optional condition over a bound variable.
        if g.chance(30) {
            let v = g.pick(&bound).clone();
            body.push(format!("{v} > 2"));
        }

        // Head: location X (local) or a bound variable (ships the tuple).
        let head_loc = if g.chance(75) {
            "X".to_string()
        } else {
            g.pick(&bound).clone()
        };
        let mut head_args: Vec<String> = vec![head_loc.clone()];
        for _ in 1..head_arity {
            if g.chance(15) {
                head_args.push(g.below(10).to_string());
            } else {
                head_args.push(g.pick(&bound).clone());
            }
        }
        // Optional aggregate in the last head position.
        if head_arity > 1 && g.chance(20) {
            let last = head_args.len() - 1;
            head_args[last] = if g.chance(50) {
                "count<*>".to_string()
            } else {
                format!("min<{}>", g.pick(&bound))
            };
        }

        let kw = if delete { "delete " } else { "" };
        out.push_str(&format!(
            "R{i} {kw}{head_name}@{head_loc}({}) :- {}.\n",
            head_args.join(", "),
            body.join(", ")
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pretty_reparse_preserves_analysis(seed in any::<u64>()) {
        let source = gen_program(seed);
        let program = parse_program(&source)
            .unwrap_or_else(|e| panic!("generated program failed to parse: {e}\n{source}"));
        let first = analyze(&program);

        let printed = program_to_string(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("pretty output failed to reparse: {e}\n{printed}"));
        prop_assert_eq!(&program, &reparsed);

        let second = analyze(&reparsed);
        prop_assert_eq!(&first.rule_classes, &second.rule_classes);
        prop_assert_eq!(&first.edges, &second.edges);
        prop_assert_eq!(&first.predicates, &second.predicates);
        prop_assert_eq!(&first.diagnostics, &second.diagnostics);
    }
}
