//! Dataflow-engine benchmark: measures what the PR-3 overhaul targets
//! (compiled adjacency dispatch, scratch-buffer element calls, `Arc<str>`
//! sends, batched delivery, and shared-plan instantiation) and writes the
//! results to `BENCH_engine.json` so the engine gets the same perf
//! trajectory tracking as `BENCH_table.json` and `BENCH_sim.json`.
//!
//! Three sections:
//!
//! * `pipeline` — a synthetic chain of pass-through elements with fan-out,
//!   no tables or PEL. This isolates the engine's per-handoff cost: queue
//!   pop, adjacency lookup, tuple clone per route.
//! * `chord_deliver` — a single-node Chord ring answering `lookup` tuples
//!   end-to-end (demux, joins, agg probes, head projection, netout),
//!   through both the one-at-a-time and the batched delivery entry points.
//! * `plan_sharing` — wall time and resident memory to bring up many Chord
//!   nodes by re-planning per node (the pre-PR-3 path) versus instantiating
//!   from one shared `PlannedProgram`.
//! * `delta_agg` — the incremental `TableAgg`: per-mutation cost of the
//!   delta-driven aggregate maintenance versus the recompute-per-poke
//!   element it replaced (a from-scratch `Table::aggregate` per change).
//! * `mat_view` — the materialized join view: per-mutation cost of
//!   `MatView`'s delta-driven provenance maintenance versus recomputing
//!   the two-table join from scratch at every poke.
//! * `agg_probe` — the delta-fed aggregation probe: per-event cost of
//!   `AggProbe`'s cached per-group contributions versus the counted full
//!   scan it replaces.
//!
//! The binary also smoke-asserts the strand path: the shared Chord plan
//! must contain fused strands, and the `chord_deliver` section exercises
//! them end-to-end (every lookup runs through fused rule strands).
//!
//! Usage: `cargo run --release --bin engine_bench [-- --smoke] [--out PATH]`

use std::collections::HashMap;
use std::time::Instant;

use p2_bench::to_json;
use p2_core::{P2Node, PlanConfig, PlannedProgram};
use p2_dataflow::elements::{AggProbe, FusedStrand, Insert, MatView, TableAgg, ViewInput};
use p2_dataflow::{Element, ElementCtx, Engine, Graph, Route};
use p2_overlays::chord;
use p2_pel::{BinOp, Expr, Program};
use p2_table::{AggFunc, Table, TableRef, TableSpec};
use p2_value::{SimTime, Tuple, TupleBuilder, Uint160, Value};
use serde::Serialize;

/// Forwards every tuple on all connected output ports.
struct Repeat {
    ports: usize,
}

impl Element for Repeat {
    fn class(&self) -> &'static str {
        "Repeat"
    }
    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        for p in 0..self.ports {
            ctx.emit(p, tuple.clone());
        }
    }
}

/// Terminal element: counts arrivals, emits nothing.
struct Count {
    seen: u64,
}

impl Element for Count {
    fn class(&self) -> &'static str {
        "Count"
    }
    fn push(&mut self, _port: usize, _tuple: &Tuple, _ctx: &mut ElementCtx<'_>) {
        self.seen += 1;
    }
}

#[derive(Debug, Clone, Serialize)]
struct PipelineResult {
    chain_len: usize,
    fanout: usize,
    deliveries: u64,
    handoffs: u64,
    wall_secs: f64,
    ns_per_handoff: f64,
    handoffs_per_sec: f64,
}

/// A chain of `chain_len` single-port repeaters ending in a `fanout`-way
/// split into counters: every delivery costs `chain_len + fanout` handoffs.
fn bench_pipeline(chain_len: usize, fanout: usize, deliveries: u64) -> PipelineResult {
    let mut g = Graph::new();
    let mut prev = None;
    let mut first = None;
    for i in 0..chain_len {
        let id = g.add(format!("repeat{i}"), Box::new(Repeat { ports: 1 }));
        if let Some(p) = prev {
            g.connect(p, 0, id, 0);
        }
        first.get_or_insert(id);
        prev = Some(id);
    }
    let tail = g.add("split", Box::new(Repeat { ports: 1 }));
    if let Some(p) = prev {
        g.connect(p, 0, tail, 0);
    }
    for i in 0..fanout {
        let c = g.add(format!("count{i}"), Box::new(Count { seen: 0 }));
        g.connect(tail, 0, c, 0);
    }
    let mut engine = Engine::new(g, "n1", 1);
    engine.set_entry(Route {
        element: first.unwrap_or(tail),
        port: 0,
    });
    engine.start(SimTime::ZERO);

    let tuple = TupleBuilder::new("x").push("payload").push(7i64).build();
    let start = Instant::now();
    for _ in 0..deliveries {
        engine.deliver(tuple.clone(), SimTime::from_secs(1));
    }
    let wall = start.elapsed().as_secs_f64();
    let handoffs = engine.stats().handoffs;
    PipelineResult {
        chain_len,
        fanout,
        deliveries,
        handoffs,
        wall_secs: wall,
        ns_per_handoff: wall * 1e9 / handoffs.max(1) as f64,
        handoffs_per_sec: handoffs as f64 / wall.max(1e-12),
    }
}

#[derive(Debug, Clone, Serialize)]
struct ChordDeliverResult {
    lookups: u64,
    batched: bool,
    wall_secs: f64,
    us_per_lookup: f64,
    lookups_per_sec: f64,
    handoffs_per_lookup: f64,
}

/// A one-node Chord ring (the node is its own successor) answering lookups
/// locally: the full demux → rule-strand → netout path with real tables.
fn bench_chord_deliver(lookups: u64, batch: usize) -> ChordDeliverResult {
    let mut host = chord::build_node("n0:11111", None, 7, false).expect("chord node plans");
    let node = host.node_mut();
    node.start(SimTime::ZERO);
    node.deliver(chord::join_tuple("n0:11111", 1), SimTime::from_secs(1));
    node.advance_to(SimTime::from_secs(30));
    assert!(
        node.table("bestSucc").map(|t| !t.lock().is_empty()) == Some(true),
        "single-node ring did not converge"
    );
    let handoffs_before = node.stats().handoffs;

    let mut made = 0u64;
    let mut key_seq = 0u64;
    let mut next_key = || {
        key_seq += 1;
        Uint160::hash_of(&key_seq.to_le_bytes())
    };
    let start = Instant::now();
    let now = SimTime::from_secs(31);
    while made < lookups {
        let n = batch.min((lookups - made) as usize);
        if n == 1 {
            node.deliver(
                chord::lookup_tuple("n0:11111", next_key(), "n0:11111", made as i64),
                now,
            );
        } else {
            let batch_tuples: Vec<Tuple> = (0..n)
                .map(|i| {
                    chord::lookup_tuple(
                        "n0:11111",
                        next_key(),
                        "n0:11111",
                        (made as usize + i) as i64,
                    )
                })
                .collect();
            node.deliver_many(batch_tuples, now);
        }
        made += n as u64;
        // Keep the observation taps from growing without bound.
        if made.is_multiple_of(8192) {
            for name in ["lookup", "lookupResults"] {
                if let Some(c) = node.collector(name) {
                    c.lock().clear();
                }
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let handoffs = node.stats().handoffs - handoffs_before;
    ChordDeliverResult {
        lookups,
        batched: batch > 1,
        wall_secs: wall,
        us_per_lookup: wall * 1e6 / lookups.max(1) as f64,
        lookups_per_sec: lookups as f64 / wall.max(1e-12),
        handoffs_per_lookup: handoffs as f64 / lookups.max(1) as f64,
    }
}

#[derive(Debug, Clone, Serialize)]
struct PlanSharingResult {
    nodes: usize,
    fresh_plan_wall_secs: f64,
    fresh_plan_us_per_node: f64,
    shared_plan_wall_secs: f64,
    shared_plan_us_per_node: f64,
    instantiation_speedup: f64,
    fresh_rss_bytes_per_node: f64,
    shared_rss_bytes_per_node: f64,
}

/// Resident-set size of this process in bytes (Linux; 0 elsewhere).
fn rss_bytes() -> u64 {
    let Ok(statm) = std::fs::read_to_string("/proc/self/statm") else {
        return 0;
    };
    let pages: u64 = statm
        .split_whitespace()
        .nth(1)
        .and_then(|f| f.parse().ok())
        .unwrap_or(0);
    pages * 4096
}

fn chord_facts(addr: &str) -> Vec<Tuple> {
    chord::base_facts(addr, Some("node0:11111"))
}

fn bench_plan_sharing(nodes: usize) -> PlanSharingResult {
    let program = chord::program();
    let config = PlanConfig::new()
        .watch("lookupResults")
        .watch("lookup")
        .without_jitter();

    // Shared path first, from the cleanest heap baseline: one compile, N
    // instantiations.
    let rss0 = rss_bytes();
    let start = Instant::now();
    let shared_plan = PlannedProgram::compile(program, &config).expect("chord plans");
    let shared: Vec<P2Node> = (0..nodes)
        .map(|i| {
            let addr = format!("node{i}:11111");
            P2Node::from_plan(&shared_plan, &addr, i as u64, chord_facts(&addr))
        })
        .collect();
    let shared_wall = start.elapsed().as_secs_f64();
    let shared_rss = rss_bytes().saturating_sub(rss0);

    // Pre-PR-3 path: full compile per node. Measured second, so any pages
    // recycled from the shared run's temporaries shrink this delta — the
    // comparison is conservative for the shared-plan claim.
    let rss1 = rss_bytes();
    let start = Instant::now();
    let fresh: Vec<P2Node> = (0..nodes)
        .map(|i| {
            let addr = format!("node{i}:11111");
            let plan = PlannedProgram::compile(program, &config).expect("chord plans");
            P2Node::from_plan(&plan, &addr, i as u64, chord_facts(&addr))
        })
        .collect();
    let fresh_wall = start.elapsed().as_secs_f64();
    let fresh_rss = rss_bytes().saturating_sub(rss1);

    // Touch both fleets so the optimizer cannot elide them, and count a
    // value the fleets agree on.
    let sanity: usize = fresh
        .iter()
        .chain(shared.iter())
        .filter(|n| {
            n.table("node")
                .map(|t| t.lock().len() == 1)
                .unwrap_or(false)
        })
        .count();
    assert_eq!(sanity, 2 * nodes, "fleet sanity check failed");

    PlanSharingResult {
        nodes,
        fresh_plan_wall_secs: fresh_wall,
        fresh_plan_us_per_node: fresh_wall * 1e6 / nodes.max(1) as f64,
        shared_plan_wall_secs: shared_wall,
        shared_plan_us_per_node: shared_wall * 1e6 / nodes.max(1) as f64,
        instantiation_speedup: fresh_wall / shared_wall.max(1e-12),
        fresh_rss_bytes_per_node: fresh_rss as f64 / nodes.max(1) as f64,
        shared_rss_bytes_per_node: shared_rss as f64 / nodes.max(1) as f64,
    }
}

/// The recompute-per-poke materialized aggregate this PR replaced, kept
/// here as the benchmark baseline: every poke recomputes
/// `Table::aggregate` over the whole table and diffs against a memo.
struct RecomputeAgg {
    table: TableRef,
    func: AggFunc,
    agg_col: Option<usize>,
    group_cols: Vec<usize>,
    out_name: String,
    last: HashMap<Vec<Value>, Value>,
}

impl Element for RecomputeAgg {
    fn class(&self) -> &'static str {
        "RecomputeAgg"
    }

    fn push(&mut self, _port: usize, _tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let groups = match self
            .table
            .lock()
            .aggregate(self.func, self.agg_col, &self.group_cols)
        {
            Ok(g) => g,
            Err(_) => return,
        };
        for (key, agg) in groups {
            if self.last.get(&key) != Some(&agg) {
                self.last.insert(key.clone(), agg.clone());
                let mut values = key;
                values.push(agg);
                ctx.emit(0, Tuple::new(&self.out_name, values));
            }
        }
    }
}

#[derive(Debug, Clone, Serialize)]
struct DeltaAggResult {
    rows: usize,
    groups: i64,
    mutations: u64,
    incremental_wall_secs: f64,
    incremental_ns_per_mutation: f64,
    recompute_wall_secs: f64,
    recompute_ns_per_mutation: f64,
    speedup: f64,
}

/// Measures aggregate maintenance under a replacement churn: `rows` live
/// rows in `groups` groups, every mutation replaces one row's payload
/// (Delete+Insert deltas) and pokes the sum aggregate.
fn bench_delta_agg(rows: usize, groups: i64, mutations: u64) -> DeltaAggResult {
    let run = |incremental: bool| -> f64 {
        let table: TableRef = std::sync::Arc::new(parking_lot::Mutex::new(Table::new(
            TableSpec::new("t", vec![1]),
        )));
        let agg: Box<dyn Element> = if incremental {
            Box::new(TableAgg::new(
                table.clone(),
                AggFunc::Sum,
                Some(2),
                vec![0],
                "out",
            ))
        } else {
            Box::new(RecomputeAgg {
                table: table.clone(),
                func: AggFunc::Sum,
                agg_col: Some(2),
                group_cols: vec![0],
                out_name: "out".into(),
                last: HashMap::new(),
            })
        };
        let mut g = Graph::new();
        let ins = g.add("insert", Box::new(Insert::new(table)));
        let agg = g.add("agg", agg);
        let sink = g.add("sink", Box::new(Count { seen: 0 }));
        g.connect(ins, 0, agg, 0);
        g.connect(agg, 0, sink, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: ins,
            port: 0,
        });
        engine.start(SimTime::ZERO);
        let mk = |key: usize, payload: i64| {
            Tuple::new(
                "t",
                vec![
                    Value::Int(key as i64 % groups),
                    Value::Int(key as i64),
                    Value::Int(payload),
                ],
            )
        };
        for key in 0..rows {
            engine.deliver(mk(key, 0), SimTime::from_secs(1));
        }
        let start = Instant::now();
        for i in 0..mutations {
            let key = (i as usize) % rows;
            engine.deliver(mk(key, i as i64 + 1), SimTime::from_secs(2));
        }
        start.elapsed().as_secs_f64()
    };
    let incremental_wall_secs = run(true);
    let recompute_wall_secs = run(false);
    DeltaAggResult {
        rows,
        groups,
        mutations,
        incremental_wall_secs,
        incremental_ns_per_mutation: incremental_wall_secs * 1e9 / mutations.max(1) as f64,
        recompute_wall_secs,
        recompute_ns_per_mutation: recompute_wall_secs * 1e9 / mutations.max(1) as f64,
        speedup: recompute_wall_secs / incremental_wall_secs.max(1e-12),
    }
}

/// The recompute-per-poke join view baseline: every poke recomputes the
/// two-table join from scratch and diffs against a memo.
struct RecomputeView {
    link: TableRef,
    node: TableRef,
    out_name: String,
    last: HashMap<Vec<Value>, usize>,
}

impl Element for RecomputeView {
    fn class(&self) -> &'static str {
        "RecomputeView"
    }

    fn push(&mut self, _port: usize, _tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let mut fresh: HashMap<Vec<Value>, usize> = HashMap::new();
        {
            let link = self.link.lock();
            let node = self.node.lock();
            for l in link.scan_iter() {
                for n in node.scan_iter() {
                    if l.field(0) == n.field(0) {
                        let head = vec![l.field(0).clone(), l.field(1).clone(), n.field(1).clone()];
                        *fresh.entry(head).or_insert(0) += 1;
                    }
                }
            }
        }
        for (key, count) in &fresh {
            if self.last.get(key) != Some(count) {
                ctx.emit(0, Tuple::new(&self.out_name, key.clone()));
            }
        }
        self.last = fresh;
    }
}

#[derive(Debug, Clone, Serialize)]
struct MatViewResult {
    rows: usize,
    groups: i64,
    mutations: u64,
    incremental_wall_secs: f64,
    incremental_ns_per_mutation: f64,
    recompute_wall_secs: f64,
    recompute_ns_per_mutation: f64,
    speedup: f64,
}

/// Measures join-view maintenance under a replacement churn: `rows` link
/// rows joined against a static `groups`-row node table; every mutation
/// replaces one link row's payload (Delete+Insert deltas) and pokes the
/// view, which maintains provenance counts from the deltas (two indexed
/// probes) versus recomputing the join from scratch.
fn bench_mat_view(rows: usize, groups: i64, mutations: u64) -> MatViewResult {
    let field = |i: usize| Program::compile(&Expr::Field(i));
    let run = |incremental: bool| -> f64 {
        let link: TableRef = std::sync::Arc::new(parking_lot::Mutex::new(Table::new(
            TableSpec::new("link", vec![1]),
        )));
        let node: TableRef = std::sync::Arc::new(parking_lot::Mutex::new(Table::new(
            TableSpec::new("node", vec![0]),
        )));
        for g in 0..groups {
            node.lock()
                .insert(
                    Tuple::new("node", vec![Value::Int(g), Value::Int(g * 7)]),
                    SimTime::ZERO,
                )
                .unwrap();
        }
        let view: Box<dyn Element> = if incremental {
            let sub = link.lock().subscribe_deltas();
            Box::new(MatView::new(
                vec![ViewInput {
                    table: link.clone(),
                    sub,
                    pre_filters: vec![],
                    ops: vec![FusedStrand::probe_op(node.clone(), vec![(0, 0)])],
                    head_fields: vec![field(0), field(1), field(4)],
                }],
                "out",
            ))
        } else {
            Box::new(RecomputeView {
                link: link.clone(),
                node: node.clone(),
                out_name: "out".into(),
                last: HashMap::new(),
            })
        };
        let mut g = Graph::new();
        let ins = g.add("insert", Box::new(Insert::new(link)));
        let view = g.add("view", view);
        let sink = g.add("sink", Box::new(Count { seen: 0 }));
        g.connect(ins, 0, view, 0);
        g.connect(view, 0, sink, 0);
        g.connect(view, 1, sink, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: ins,
            port: 0,
        });
        engine.start(SimTime::ZERO);
        let mk = |key: usize, payload: i64| {
            Tuple::new(
                "link",
                vec![
                    Value::Int(key as i64 % groups),
                    Value::Int(key as i64),
                    Value::Int(payload),
                ],
            )
        };
        for key in 0..rows {
            engine.deliver(mk(key, 0), SimTime::from_secs(1));
        }
        let start = Instant::now();
        for i in 0..mutations {
            let key = (i as usize) % rows;
            engine.deliver(mk(key, i as i64 + 1), SimTime::from_secs(2));
        }
        start.elapsed().as_secs_f64()
    };
    let incremental_wall_secs = run(true);
    let recompute_wall_secs = run(false);
    MatViewResult {
        rows,
        groups,
        mutations,
        incremental_wall_secs,
        incremental_ns_per_mutation: incremental_wall_secs * 1e9 / mutations.max(1) as f64,
        recompute_wall_secs,
        recompute_ns_per_mutation: recompute_wall_secs * 1e9 / mutations.max(1) as f64,
        speedup: recompute_wall_secs / incremental_wall_secs.max(1e-12),
    }
}

#[derive(Debug, Clone, Serialize)]
struct AggProbeResult {
    rows: usize,
    events: u64,
    incremental_wall_secs: f64,
    incremental_ns_per_event: f64,
    scan_wall_secs: f64,
    scan_ns_per_event: f64,
    speedup: f64,
}

/// Measures aggregation-probe cost under a mutate-then-probe churn
/// (Chord's L2/SU1 shape): `rows` table rows, each step replaces one row
/// (Delete+Insert deltas) and delivers a probe event, aggregating
/// MIN(V - K) over the rows passing `B > K`. The delta-fed probe folds
/// its cached per-group contributions; the baseline pays a counted full
/// scan with per-row PEL evaluation.
fn bench_agg_probe(rows: usize, events: u64) -> AggProbeResult {
    let run = |incremental: bool| -> f64 {
        let table: TableRef = std::sync::Arc::new(parking_lot::Mutex::new(Table::new(
            TableSpec::new("row", vec![0]),
        )));
        let filter = Program::compile(&Expr::bin(BinOp::Gt, Expr::Field(1), Expr::Field(0)));
        let agg_expr = Program::compile(&Expr::bin(BinOp::Sub, Expr::Field(2), Expr::Field(0)));
        let probe: Box<dyn Element> = if incremental {
            Box::new(AggProbe::new_incremental(
                table.clone(),
                2,
                AggFunc::Min,
                Some(filter),
                agg_expr,
                "out",
            ))
        } else {
            Box::new(AggProbe::new(
                table.clone(),
                2,
                AggFunc::Min,
                Some(filter),
                agg_expr,
                "out",
            ))
        };
        let mut g = Graph::new();
        let demux = g.add(
            "demux",
            Box::new(p2_dataflow::elements::Demux::new(vec![
                "row".into(),
                "ev".into(),
            ])),
        );
        let ins = g.add("insert", Box::new(Insert::new(table)));
        let probe = g.add("probe", probe);
        let sink = g.add("sink", Box::new(Count { seen: 0 }));
        g.connect(demux, 0, ins, 0);
        g.connect(demux, 1, probe, 0);
        g.connect(probe, 0, sink, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: demux,
            port: 0,
        });
        engine.start(SimTime::ZERO);
        let mk = |key: usize, payload: i64| {
            Tuple::new("row", vec![Value::Int(key as i64), Value::Int(payload)])
        };
        for key in 0..rows {
            engine.deliver(mk(key, 0), SimTime::from_secs(1));
        }
        let event = TupleBuilder::new("ev").push(2i64).build();
        let start = Instant::now();
        for i in 0..events {
            let key = (i as usize) % rows;
            engine.deliver(mk(key, i as i64 + 1), SimTime::from_secs(2));
            engine.deliver(event.clone(), SimTime::from_secs(2));
        }
        start.elapsed().as_secs_f64()
    };
    let incremental_wall_secs = run(true);
    let scan_wall_secs = run(false);
    AggProbeResult {
        rows,
        events,
        incremental_wall_secs,
        incremental_ns_per_event: incremental_wall_secs * 1e9 / events.max(1) as f64,
        scan_wall_secs,
        scan_ns_per_event: scan_wall_secs * 1e9 / events.max(1) as f64,
        speedup: scan_wall_secs / incremental_wall_secs.max(1e-12),
    }
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    pipeline: Vec<PipelineResult>,
    chord_deliver: Vec<ChordDeliverResult>,
    plan_sharing: PlanSharingResult,
    delta_agg: Vec<DeltaAggResult>,
    mat_view: Vec<MatViewResult>,
    agg_probe: Vec<AggProbeResult>,
    fused_strand_count: usize,
    mat_view_count: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };

    let out_path = value("--out").unwrap_or_else(|| "BENCH_engine.json".to_string());
    let smoke = flag("--smoke");
    let (pipe_deliveries, lookups, fleet) = if smoke {
        (50_000u64, 20_000u64, 64usize)
    } else {
        (500_000, 100_000, 512)
    };

    // Fail on an unwritable output path up front.
    if let Err(e) = std::fs::write(&out_path, "{}") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    // Plan sharing first: its RSS deltas are cleanest before the other
    // sections grow (and then recycle) the heap.
    eprintln!("plan sharing: {fleet} chord nodes...");
    let plan_sharing = bench_plan_sharing(fleet);
    eprintln!(
        "  fresh {:>8.1} us/node ({:.0} KiB RSS) vs shared {:>8.1} us/node ({:.0} KiB RSS): {:.1}x",
        plan_sharing.fresh_plan_us_per_node,
        plan_sharing.fresh_rss_bytes_per_node / 1024.0,
        plan_sharing.shared_plan_us_per_node,
        plan_sharing.shared_rss_bytes_per_node / 1024.0,
        plan_sharing.instantiation_speedup
    );

    let mut pipeline = Vec::new();
    for (chain, fanout) in [(32usize, 1usize), (8, 8), (1, 32)] {
        eprintln!("pipeline: chain {chain}, fanout {fanout}...");
        let r = bench_pipeline(chain, fanout, pipe_deliveries);
        eprintln!(
            "  {} handoffs in {:.3} s -> {:>7.1} ns/handoff ({:>12.0} handoffs/s)",
            r.handoffs, r.wall_secs, r.ns_per_handoff, r.handoffs_per_sec
        );
        pipeline.push(r);
    }

    // CI smoke-run of the strand path: the default shared plan must fuse
    // the dominant Chord rule shapes, and the lookup benchmark below then
    // drives them end-to-end.
    let fused_strand_count = chord::shared_plan(false).fused_strand_count();
    assert!(
        fused_strand_count >= 20,
        "strand fusion regressed: only {fused_strand_count} fused strands in the Chord plan"
    );
    eprintln!("chord shared plan: {fused_strand_count} fused rule strands");

    let mut chord_deliver = Vec::new();
    for batch in [1usize, 64] {
        eprintln!("chord lookups: batch {batch}...");
        let r = bench_chord_deliver(lookups, batch);
        eprintln!(
            "  {} lookups in {:.3} s -> {:>7.2} us/lookup ({:>9.0} lookups/s, {:.1} handoffs each)",
            r.lookups, r.wall_secs, r.us_per_lookup, r.lookups_per_sec, r.handoffs_per_lookup
        );
        chord_deliver.push(r);
    }

    let mut delta_agg = Vec::new();
    let (rows, groups, mutations) = if smoke {
        (500usize, 4i64, 50_000u64)
    } else {
        (1000, 4, 200_000)
    };
    for rows in [rows / 10, rows] {
        eprintln!("delta agg: {rows} rows, {groups} groups, {mutations} mutations...");
        let r = bench_delta_agg(rows, groups, mutations);
        eprintln!(
            "  incremental {:>7.0} ns/mutation vs recompute {:>8.0} ns/mutation: {:.1}x",
            r.incremental_ns_per_mutation, r.recompute_ns_per_mutation, r.speedup
        );
        delta_agg.push(r);
    }

    let mut mat_view = Vec::new();
    for rows in [rows / 10, rows] {
        eprintln!("mat view: {rows} link rows, {groups} node rows, {mutations} mutations...");
        let r = bench_mat_view(rows, groups, mutations);
        eprintln!(
            "  incremental {:>7.0} ns/mutation vs recompute {:>8.0} ns/mutation: {:.1}x",
            r.incremental_ns_per_mutation, r.recompute_ns_per_mutation, r.speedup
        );
        mat_view.push(r);
    }

    let mut agg_probe = Vec::new();
    let probe_events = mutations / 2;
    for rows in [rows / 10, rows] {
        eprintln!("agg probe: {rows} rows, {probe_events} mutate+probe events...");
        let r = bench_agg_probe(rows, probe_events);
        eprintln!(
            "  incremental {:>7.0} ns/event vs scan {:>8.0} ns/event: {:.1}x",
            r.incremental_ns_per_event, r.scan_ns_per_event, r.speedup
        );
        agg_probe.push(r);
    }

    // CI smoke-run of the view path: the default shared plan must lower
    // the pure-join Chord rules to materialized views.
    let mat_view_count = chord::shared_plan(false).mat_view_count();
    assert!(
        mat_view_count >= 6,
        "view materialization regressed: only {mat_view_count} views in the Chord plan"
    );
    eprintln!("chord shared plan: {mat_view_count} materialized views");

    let report = BenchReport {
        bench: "dataflow_engine".to_string(),
        pipeline,
        chord_deliver,
        plan_sharing,
        delta_agg,
        mat_view,
        agg_probe,
        fused_strand_count,
        mat_view_count,
    };
    let json = to_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
