//! Relational operator elements: equijoin, anti-join, selection, projection.

use p2_pel::Program;
use p2_table::TableRef;
use p2_value::{Tuple, Value};

use crate::element::{Element, ElementCtx};

/// Upper bound on join-key arity probed without heap allocation; OverLog
/// rules rarely unify more than two or three columns per table.
pub(crate) const INLINE_PROBE: usize = 8;

pub(crate) const NULL_VALUE: Value = Value::Null;

/// Join-key pairs normalized at construction: table columns sorted
/// ascending and deduplicated (the order [`p2_table::Table::lookup_iter`]
/// requires), with the stream fields carried alongside.
///
/// When two different stream fields constrain the *same* table column
/// (`(s1, t), (s2, t)`), one pair drives the probe and the rest become
/// stream-side equality checks (`tuple[s1] == tuple[s2]`): the constraints
/// can only both hold when those stream values agree.
#[derive(Debug, Clone, Default)]
pub struct ProbeKey {
    /// `(stream field, table column)` with unique table columns, sorted by
    /// table column.
    pub(crate) pairs: Vec<(usize, usize)>,
    /// The table columns alone, in the same (sorted) order.
    pub(crate) table_cols: Vec<usize>,
    /// Stream-field pairs that must be equal (folded duplicate-column
    /// constraints).
    pub(crate) stream_checks: Vec<(usize, usize)>,
}

impl ProbeKey {
    pub(crate) fn new(mut key: Vec<(usize, usize)>) -> ProbeKey {
        key.sort_by_key(|(_, t)| *t);
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(key.len());
        let mut stream_checks = Vec::new();
        for (s, t) in key {
            match pairs.last() {
                Some(&(s0, t0)) if t0 == t => {
                    if s0 != s {
                        stream_checks.push((s0, s));
                    }
                }
                _ => pairs.push((s, t)),
            }
        }
        let table_cols = pairs.iter().map(|(_, t)| *t).collect();
        ProbeKey {
            pairs,
            table_cols,
            stream_checks,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether the stream tuple satisfies the folded duplicate-column
    /// constraints: `Some(true)` if all hold (vacuously with none declared),
    /// `Some(false)` if some pair is present but unequal, `None` when the
    /// tuple is too short to evaluate a check (malformed).
    pub(crate) fn stream_checks_hold(&self, tuple: &Tuple) -> Option<bool> {
        for &(a, b) in &self.stream_checks {
            match (tuple.get(a), tuple.get(b)) {
                (Ok(x), Ok(y)) if x == y => {}
                (Ok(_), Ok(_)) => return Some(false),
                _ => return None,
            }
        }
        Some(true)
    }

    /// Runs `body` with the probe values borrowed from `tuple` (no clones;
    /// stack storage up to [`INLINE_PROBE`] columns). Returns `None` when
    /// the tuple is too short to probe. Callers must consult
    /// [`ProbeKey::stream_checks_hold`] first — a failed check means no row
    /// can match, which a join and an anti-join interpret oppositely.
    pub(crate) fn with_probe<R>(
        &self,
        tuple: &Tuple,
        body: impl FnOnce(&[&Value]) -> R,
    ) -> Option<R> {
        let n = self.pairs.len();
        let mut stack: [&Value; INLINE_PROBE] = [&NULL_VALUE; INLINE_PROBE];
        let mut heap: Vec<&Value>;
        let probe: &[&Value] = if n <= INLINE_PROBE {
            for (slot, (s, _)) in stack.iter_mut().zip(&self.pairs) {
                *slot = tuple.get(*s).ok()?;
            }
            &stack[..n]
        } else {
            heap = Vec::with_capacity(n);
            for (s, _) in &self.pairs {
                heap.push(tuple.get(*s).ok()?);
            }
            &heap
        };
        Some(body(probe))
    }
}

/// Stream × table equijoin.
///
/// The arriving tuple (the *stream* side, typically an event) probes the
/// materialized table on equality of the configured key columns; every match
/// is emitted as the concatenation `stream ++ table_row` under `out_name`.
/// This is the workhorse of OverLog rule bodies — "the unification of
/// variables in the body of a rule is implemented by an equality-based
/// relational join" (§2.4).
///
/// Probing is allocation-free: key values are borrowed from the stream
/// tuple and matches are walked through the table's borrowing lookup
/// iterator, so the only allocations are the emitted joined tuples.
pub struct Join {
    table: TableRef,
    key: ProbeKey,
    out_name: String,
}

impl Join {
    /// Creates an equijoin against `table` on the given
    /// `(stream field, table field)` key pairs.
    pub fn new(table: TableRef, key: Vec<(usize, usize)>, out_name: impl Into<String>) -> Join {
        Join {
            table,
            key: ProbeKey::new(key),
            out_name: out_name.into(),
        }
    }
}

impl Element for Join {
    fn class(&self) -> &'static str {
        "Join"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let guard = self.table.lock();
        if self.key.is_empty() {
            for row in guard.scan_iter() {
                ctx.emit(0, tuple.join(&self.out_name, row));
            }
            return;
        }
        if self.key.stream_checks_hold(tuple) != Some(true) {
            return; // conflicting constraints or malformed: nothing matches
        }
        self.key.with_probe(tuple, |probe| {
            for row in guard.lookup_iter(&self.key.table_cols, probe) {
                ctx.emit(0, tuple.join(&self.out_name, row));
            }
        });
    }
}

/// Stream × table anti-join (negation).
///
/// Forwards the arriving tuple unchanged when **no** table row matches the
/// key columns; used to implement `not member(...)`-style body terms. The
/// membership test borrows its probe values and stops at the first match.
pub struct AntiJoin {
    table: TableRef,
    key: ProbeKey,
}

impl AntiJoin {
    /// Creates an anti-join against `table` on the given key pairs.
    pub fn new(table: TableRef, key: Vec<(usize, usize)>) -> AntiJoin {
        AntiJoin {
            table,
            key: ProbeKey::new(key),
        }
    }
}

impl Element for AntiJoin {
    fn class(&self) -> &'static str {
        "AntiJoin"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let any_match = {
            let guard = self.table.lock();
            if self.key.is_empty() {
                Some(!guard.is_empty())
            } else {
                match self.key.stream_checks_hold(tuple) {
                    // Conflicting constraints: no row can match, so the
                    // negation is satisfied.
                    Some(false) => Some(false),
                    // Malformed tuple: dropped below, as before.
                    None => None,
                    Some(true) => self.key.with_probe(tuple, |probe| {
                        guard.contains_match(&self.key.table_cols, probe)
                    }),
                }
            }
        };
        // A tuple too short to probe (None) is dropped, as before.
        if any_match == Some(false) {
            ctx.emit(0, tuple.clone());
        }
    }
}

/// Selection: forwards tuples for which the PEL filter evaluates to true.
///
/// Evaluation errors drop the tuple (a malformed remote tuple must not take
/// the node down); the number of such drops is recorded.
pub struct Select {
    filter: Program,
    /// Tuples dropped because the filter raised an evaluation error.
    pub eval_errors: u64,
}

impl Select {
    /// Creates a selection from a compiled PEL predicate.
    pub fn new(filter: Program) -> Select {
        Select {
            filter,
            eval_errors: 0,
        }
    }
}

impl Element for Select {
    fn class(&self) -> &'static str {
        "Select"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        match self.filter.eval_bool(tuple, ctx.eval()) {
            Ok(true) => ctx.emit(0, tuple.clone()),
            Ok(false) => {}
            Err(_) => self.eval_errors += 1,
        }
    }
}

/// Projection: builds the head tuple by evaluating one PEL program per output
/// field ("a 'project' element implements a superset of a purely logical
/// database projection operator by running a PEL program on each incoming
/// tuple", §3.4).
pub struct Project {
    out_name: String,
    fields: Vec<Program>,
    /// Tuples dropped because a field program raised an evaluation error.
    pub eval_errors: u64,
}

impl Project {
    /// Creates a projection producing tuples named `out_name`.
    pub fn new(out_name: impl Into<String>, fields: Vec<Program>) -> Project {
        Project {
            out_name: out_name.into(),
            fields,
            eval_errors: 0,
        }
    }
}

impl Element for Project {
    fn class(&self) -> &'static str {
        "Project"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let mut values = Vec::with_capacity(self.fields.len());
        for program in &self.fields {
            match program.eval(tuple, ctx.eval()) {
                Ok(v) => values.push(v),
                Err(_) => {
                    self.eval_errors += 1;
                    return;
                }
            }
        }
        ctx.emit(0, Tuple::new(&self.out_name, values));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Collector;
    use crate::engine::{Engine, Graph, Route};
    use p2_pel::{BinOp, Expr};
    use p2_table::{Table, TableSpec};
    use p2_value::{SimTime, TupleBuilder};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn succ_table() -> TableRef {
        let mut t = Table::new(TableSpec::new("succ", vec![1]));
        t.add_index(vec![0]);
        for (s, si) in [(5i64, "n5"), (9, "n9")] {
            t.insert(
                TupleBuilder::new("succ")
                    .push("n1")
                    .push(s)
                    .push(si)
                    .build(),
                SimTime::ZERO,
            )
            .unwrap();
        }
        Arc::new(Mutex::new(t))
    }

    fn run_one(element: Box<dyn Element>, input: Tuple) -> Vec<Tuple> {
        let mut g = Graph::new();
        let e = g.add("elt", element);
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(e, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: e,
            port: 0,
        });
        engine.deliver(input, SimTime::ZERO);
        let out = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        out
    }

    #[test]
    fn join_emits_one_tuple_per_match() {
        let table = succ_table();
        let join = Join::new(table, vec![(0, 0)], "ev_succ");
        let input = TupleBuilder::new("ev").push("n1").push(42i64).build();
        let out = run_one(Box::new(join), input);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|t| t.name() == "ev_succ" && t.arity() == 5));
        // Stream fields come first, then the table row.
        assert_eq!(out[0].field(1), &Value::Int(42));
    }

    #[test]
    fn join_with_no_match_emits_nothing() {
        let table = succ_table();
        let join = Join::new(table, vec![(0, 0)], "ev_succ");
        let input = TupleBuilder::new("ev").push("n2").build();
        assert!(run_one(Box::new(join), input).is_empty());
    }

    #[test]
    fn join_on_empty_key_is_cartesian_with_table() {
        let table = succ_table();
        let join = Join::new(table, vec![], "ev_succ");
        let input = TupleBuilder::new("ev").push("whatever").build();
        assert_eq!(run_one(Box::new(join), input).len(), 2);
    }

    #[test]
    fn join_keeps_duplicate_column_constraints() {
        // Two different stream fields constraining the same table column:
        // both equalities must hold, so a tuple whose fields disagree
        // matches nothing even though one of them alone would.
        let table = succ_table();
        let join = Join::new(table.clone(), vec![(0, 0), (1, 0)], "ev_succ");
        let agree = TupleBuilder::new("ev").push("n1").push("n1").build();
        assert_eq!(run_one(Box::new(join), agree).len(), 2);

        let join = Join::new(table.clone(), vec![(0, 0), (1, 0)], "ev_succ");
        let disagree = TupleBuilder::new("ev").push("n1").push("n2").build();
        assert!(run_one(Box::new(join), disagree).is_empty());

        // The anti-join sees the conflicting constraint as "no match" and
        // forwards the tuple.
        let anti = AntiJoin::new(table, vec![(0, 0), (1, 0)]);
        let disagree = TupleBuilder::new("ev").push("n1").push("n2").build();
        assert_eq!(run_one(Box::new(anti), disagree).len(), 1);
    }

    #[test]
    fn antijoin_forwards_only_non_matching() {
        let table = succ_table();
        let anti = AntiJoin::new(table.clone(), vec![(0, 0)]);
        let hit = TupleBuilder::new("ev").push("n1").build();
        assert!(run_one(Box::new(anti), hit).is_empty());

        let anti = AntiJoin::new(table, vec![(0, 0)]);
        let miss = TupleBuilder::new("ev").push("n7").build();
        assert_eq!(run_one(Box::new(anti), miss).len(), 1);
    }

    #[test]
    fn select_filters_and_survives_errors() {
        let filter = Program::compile(&Expr::bin(BinOp::Gt, Expr::Field(1), Expr::int(5)));
        let sel = Select::new(filter);
        let keep = TupleBuilder::new("x").push("n1").push(9i64).build();
        assert_eq!(run_one(Box::new(sel), keep).len(), 1);

        let filter = Program::compile(&Expr::bin(BinOp::Gt, Expr::Field(1), Expr::int(5)));
        let sel = Select::new(filter);
        let drop = TupleBuilder::new("x").push("n1").push(3i64).build();
        assert!(run_one(Box::new(sel), drop).is_empty());

        // A tuple that is too short triggers an evaluation error and is
        // dropped without panicking.
        let filter = Program::compile(&Expr::bin(BinOp::Gt, Expr::Field(1), Expr::int(5)));
        let sel = Select::new(filter);
        let short = TupleBuilder::new("x").push("n1").build();
        assert!(run_one(Box::new(sel), short).is_empty());
    }

    #[test]
    fn project_reorders_and_computes() {
        let fields = vec![
            Program::compile(&Expr::Field(2)),
            Program::compile(&Expr::bin(BinOp::Add, Expr::Field(1), Expr::int(1))),
        ];
        let proj = Project::new("out", fields);
        let input = TupleBuilder::new("in")
            .push("n1")
            .push(10i64)
            .push("n9")
            .build();
        let out = run_one(Box::new(proj), input);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name(), "out");
        assert_eq!(out[0].values(), &[Value::str("n9"), Value::Int(11)]);
    }
}
