//! Incrementally maintained join views (classic counting / semi-naive
//! maintenance on the table delta streams).
//!
//! # What a view maintains — and what it emits
//!
//! A [`MatView`] implements every delta-triggered strand of one rule whose
//! body is a pure join over stored tables (the shapes `FusedStrand`
//! recognizes): one *input* per trigger table, each carrying that strand's
//! pre-filters, probe/filter/assign ops, and head projection. The element
//! does two separable jobs:
//!
//! * **Poke-driven emission.** When the engine pokes port `k` with a tuple
//!   just inserted into trigger table `k`, the view runs input `k`'s strand
//!   through the *same* executor as [`FusedStrand`]
//!   ([`crate::elements::strand::exec`]) and emits the head tuples on out
//!   port `k`. This path is bit-for-bit what the fused (and generic)
//!   lowering produces — including firing on soft-state *refreshes*, which
//!   change no table state and therefore emit **no delta**. Emission must
//!   stay poke-driven precisely because of refreshes: Chord's stabilization
//!   cascade (`pingResp` refreshing `succ`, re-firing SU0→SU1) only works,
//!   and only matches the golden pins, if refresh pokes re-derive.
//!
//! * **Delta-driven view state.** Independently, the view drains every
//!   input table's delta subscription and maintains the set of currently
//!   derivable head tuples with **provenance counts**: an insert delta
//!   derives through its input's strand and increments each derived row's
//!   count; a `Delete`/`Expire`/`Evict` delta derives the retracted
//!   combinations and decrements. A row whose count falls to zero is no
//!   longer derivable and is emitted on the **retraction port**
//!   (`inputs.len()`), which the planner leaves unconnected in the shipped
//!   lowering — the engine drops emissions on unwired ports — so golden
//!   behaviour is unchanged while tests, gates, and future consumers can
//!   wire it to observe exact retractions. Counts (not sets) are what make
//!   duplicate derivations correct: a row derivable two ways only retracts
//!   when its *last* derivation disappears.
//!
//! # Fallback semantics
//!
//! Any delta-queue overflow, or a decrement for a row the view does not
//! hold (cross-table drain skew — see below), flags a rebuild: the view
//! re-derives all counts from a counted scan of input 0's table (deriving
//! from any one trigger enumerates the full join) and reports it via
//! [`p2_table::Table::note_rebuild`]. Rows held before the rebuild but not
//! derivable after it are retracted (sorted, deterministic); new rows are
//! *not* re-emitted — their assertions were already produced by the
//! poke-driven path.
//!
//! Three fast paths keep maintenance off the hot poke path: a **quiet
//! check** (the subscription's lock-free pending flag) skips the
//! drain/replay entirely when nothing changed — the common case, since
//! soft-state refreshes log no delta; a **hold-out**: when the drained
//! batch ends with the poked tuple's own `Insert` delta, that delta is
//! not replayed separately — the poke's single derivation serves both the
//! live emission and the provenance increment; and **replacement
//! netting**: a keyed re-insert logs a `Delete`/`Insert` pair, and when
//! the two rows agree on every trigger field the strand reads (only a
//! column the rule projects away changed), the decrement and re-increment
//! would cancel exactly, so both deltas are dropped and the counts left
//! untouched.
//!
//! Counting maintenance assumes each delta is applied against the other
//! tables' state *at the time of the mutation*. That holds exactly when at
//! most one input changed since the last drain, so a sync batch with
//! deltas from **two or more** inputs (where each side's delta would probe
//! the other's already-updated table and count new pairings twice) also
//! falls back to a rebuild rather than counting incrementally. The
//! engine's run-to-completion cascades keep multi-input batches rare: the
//! view is poked, and drains, immediately after each insert. Planners must
//! not lower rules whose programs read the RNG or the clock (stale cached
//! derivations), nor rules whose strand probes its own trigger table (the
//! delta-time derivation would observe the post-mutation state of the very
//! table being replayed).

use std::collections::HashMap;

use p2_pel::{EvalContext, Program};
use p2_table::{DeltaSubscription, TableDelta, TableRef};
use p2_value::{Tuple, Value};

use crate::element::{Element, ElementCtx};
use crate::elements::strand::{exec, StrandOp};

/// One trigger table of a materialized view: the delta source plus the
/// strand that derives head tuples from that trigger's bindings.
pub struct ViewInput {
    /// The trigger table.
    pub table: TableRef,
    /// Subscription to the trigger table's delta stream.
    pub sub: DeltaSubscription,
    /// Filters over the bare trigger tuple.
    pub pre_filters: Vec<Program>,
    /// The strand body (probes of the *other* tables, filters, assigns).
    pub ops: Vec<StrandOp>,
    /// Head projection over the virtual strand tuple.
    pub head_fields: Vec<Program>,
}

/// A materialized join view: poke-driven head emission identical to the
/// fused strands it replaces, plus a provenance-counted row set maintained
/// from the input tables' delta streams. See the module docs.
pub struct MatView {
    inputs: Vec<ViewInput>,
    /// Per input: the sorted trigger-tuple field indices its strand reads
    /// anywhere (pre-filters, probe keys, stream checks, filters, assigns,
    /// head projection). Two trigger rows agreeing on these fields derive
    /// identical head tuples — the basis of the replacement netting fast
    /// path (see `sync_holdout`).
    relevant: Vec<Vec<usize>>,
    out_name: String,
    /// Provenance counts: head-tuple values → number of distinct body
    /// combinations currently deriving them.
    counts: HashMap<Vec<Value>, usize>,
    needs_rebuild: bool,
    /// False until the first count build (initialization, not a fallback).
    built: bool,
    /// Reused delta drain buffer.
    scratch: Vec<TableDelta>,
    /// Reused assigned-values scratch for the strand executor.
    extras: Vec<Value>,
    /// Reused delta-time derivation buffer.
    derived: Vec<Tuple>,
    /// Tuples dropped by evaluation errors (union over live and delta-time
    /// derivations, mirroring `FusedStrand::eval_errors`).
    pub eval_errors: u64,
}

/// Collects the sorted, deduplicated virtual-tuple field indices `inp`'s
/// strand reads. Indices past the trigger arity name joined or assigned
/// values, which are themselves functions of the probed tables and the
/// lower indices — so two trigger rows agreeing on every collected index
/// below their arity derive identical head tuples against identical table
/// state.
fn relevant_fields(inp: &ViewInput) -> Vec<usize> {
    fn loads(p: &Program, refs: &mut Vec<usize>) {
        refs.extend(p.ops().iter().filter_map(|op| match op {
            p2_pel::Op::Load(i) => Some(*i),
            _ => None,
        }));
    }
    let mut refs = Vec::new();
    for f in &inp.pre_filters {
        loads(f, &mut refs);
    }
    for op in &inp.ops {
        match op {
            StrandOp::Filter(p) | StrandOp::Assign(p) => loads(p, &mut refs),
            StrandOp::Probe { key, .. } | StrandOp::AntiJoin { key, .. } => {
                refs.extend(key.pairs.iter().map(|(s, _)| *s));
                refs.extend(key.stream_checks.iter().flat_map(|&(a, b)| [a, b]));
            }
        }
    }
    for h in &inp.head_fields {
        loads(h, &mut refs);
    }
    refs.sort_unstable();
    refs.dedup();
    refs
}

/// Whether two trigger rows agree on every relevant field (indices past
/// either row's arity compare as absent-equals-absent).
fn same_relevant(relevant: &[usize], a: &Tuple, b: &Tuple) -> bool {
    a.name() == b.name()
        && relevant
            .iter()
            .all(|&i| a.values().get(i) == b.values().get(i))
}

impl MatView {
    /// Creates a view over its trigger inputs. `inputs` must be non-empty;
    /// input order must match the poke-port wiring (port `k` carries
    /// inserts into `inputs[k].table`).
    pub fn new(inputs: Vec<ViewInput>, out_name: impl Into<String>) -> MatView {
        assert!(!inputs.is_empty(), "a view needs at least one input");
        let relevant = inputs.iter().map(relevant_fields).collect();
        MatView {
            inputs,
            relevant,
            out_name: out_name.into(),
            counts: HashMap::new(),
            needs_rebuild: true,
            built: false,
            scratch: Vec::new(),
            extras: Vec::new(),
            derived: Vec::new(),
            eval_errors: 0,
        }
    }

    /// The port that emits retractions (head rows whose last derivation
    /// disappeared): one past the trigger ports.
    pub fn retract_port(&self) -> usize {
        self.inputs.len()
    }

    /// The maintained `(head values, provenance count)` pairs, sorted.
    /// Exposed for equivalence tests and diagnostics.
    pub fn contents(&self) -> Vec<(Vec<Value>, usize)> {
        let mut out: Vec<(Vec<Value>, usize)> =
            self.counts.iter().map(|(k, c)| (k.clone(), *c)).collect();
        out.sort();
        out
    }

    /// Derives the head tuples reachable from `trigger` through input
    /// `input`'s strand into `self.derived` (cleared first). Shares the
    /// fused-strand executor, so enumeration order, error drops, and
    /// filter semantics are identical to the live path.
    fn derive(&mut self, input: usize, trigger: &Tuple, ctx: &mut ElementCtx<'_>) {
        self.derived.clear();
        let MatView {
            inputs,
            out_name,
            extras,
            derived,
            eval_errors,
            ..
        } = self;
        let inp = &inputs[input];
        for filter in &inp.pre_filters {
            match filter.eval_bool(trigger, ctx.eval()) {
                Ok(true) => {}
                Ok(false) => return,
                Err(_) => {
                    *eval_errors += 1;
                    return;
                }
            }
        }
        extras.clear();
        exec(
            &inp.ops,
            &[trigger.values()],
            extras,
            &inp.head_fields,
            out_name,
            eval_errors,
            ctx,
            &mut |_ctx: &mut ElementCtx<'_>, t| derived.push(t),
        );
    }

    /// Catches up on every input's delta stream, maintaining the counts
    /// and emitting retractions for rows whose last derivation vanished.
    fn sync(&mut self, ctx: &mut ElementCtx<'_>) {
        let _ = self.sync_holdout(None, ctx);
    }

    /// [`MatView::sync`], but when the drained batch ends with the poked
    /// tuple's own `Insert` delta (the overwhelmingly common shape: the
    /// engine pokes the view immediately after each insert), that delta is
    /// *held out* of the replay and `true` is returned — the caller
    /// derives the poked tuple once and uses the result for both the live
    /// emission and the provenance increment, instead of deriving twice.
    /// Holding out the tail delta is sound exactly because it is last: the
    /// other tables' current state is their state at its mutation time.
    fn sync_holdout(&mut self, poke: Option<(usize, &Tuple)>, ctx: &mut ElementCtx<'_>) -> bool {
        // Quiet fast path: under refresh-heavy workloads most pokes carry
        // no table delta at all (pure refreshes log none), so the common
        // sync is one atomic load per input — no table lock, no drain.
        if !self.needs_rebuild && !self.inputs.iter().any(|i| i.sub.has_pending()) {
            return false;
        }
        // Past the quiet check this sync folds real deltas into the
        // provenance counts (or rebuilds them): mark the poke as doing work.
        ctx.note_state_change();
        // Phase 1: drain every input under its own lock (derivation later
        // probes the *other* tables through the strand ops and must not
        // hold any table guard while doing so). Incremental counting is
        // only sound when at most ONE input changed since the last sync:
        // each delta derives against the other tables' current state, so a
        // batch touching two joined inputs would count their new pairings
        // once per side. Such batches fall back to a rebuild.
        debug_assert!(self.scratch.is_empty());
        let mut deltas = std::mem::take(&mut self.scratch);
        let mut dirty: Option<usize> = None;
        for input in 0..self.inputs.len() {
            let table = self.inputs[input].table.clone();
            let mut guard = table.lock();
            let start = deltas.len();
            if guard.drain_deltas(&self.inputs[input].sub, &mut deltas) {
                self.needs_rebuild = true;
            }
            if deltas.len() > start {
                match dirty {
                    None => dirty = Some(input),
                    Some(_) => self.needs_rebuild = true,
                }
            }
        }

        // Phase 2: replay the single dirty input's deltas through its
        // strand, adjusting provenance counts.
        let mut held = false;
        if !self.needs_rebuild {
            if let Some(input) = dirty {
                if let Some((port, tuple)) = poke {
                    if port == input
                        && deltas.last().is_some_and(|d| {
                            !d.kind.is_removal()
                                && d.tuple.name() == tuple.name()
                                && d.tuple.values() == tuple.values()
                        })
                    {
                        deltas.pop();
                        // Net out a replacement: when the delta right
                        // before the held insert removes a row agreeing on
                        // every field this strand reads (typical soft-state
                        // refresh — only a freshness column changed), the
                        // two derivations are identical, so decrement plus
                        // re-increment is a no-op. Drop both and leave the
                        // counts alone; the old row's provenance now stands
                        // for the new one.
                        if deltas.last().is_some_and(|d| {
                            d.kind.is_removal()
                                && same_relevant(&self.relevant[input], &d.tuple, tuple)
                        }) {
                            deltas.pop();
                        } else {
                            held = true;
                        }
                    }
                }
                let retract_port = self.retract_port();
                for delta in &deltas {
                    self.derive(input, &delta.tuple, ctx);
                    if delta.kind.is_removal() {
                        for t in std::mem::take(&mut self.derived) {
                            let key = t.values().to_vec();
                            match self.counts.get_mut(&key) {
                                Some(c) if *c > 1 => *c -= 1,
                                Some(_) => {
                                    self.counts.remove(&key);
                                    ctx.emit(retract_port, t);
                                }
                                None => {
                                    // Decrement miss: residual skew the
                                    // dirty-input check did not cover.
                                    self.needs_rebuild = true;
                                }
                            }
                        }
                    } else {
                        for t in self.derived.drain(..) {
                            *self.counts.entry(t.values().to_vec()).or_insert(0) += 1;
                        }
                    }
                    if self.needs_rebuild {
                        break;
                    }
                }
            }
        }
        deltas.clear();
        self.scratch = deltas;

        if self.needs_rebuild {
            self.rebuild(ctx);
            // The rebuild recounted from the tables, which already hold
            // the poked row — the caller must not increment again.
            held = false;
        }
        held
    }

    /// Re-derives all counts from input 0's table (any one trigger
    /// enumerates the full join), retracting rows that are no longer
    /// derivable. See the module docs for why new rows are not re-emitted.
    fn rebuild(&mut self, ctx: &mut ElementCtx<'_>) {
        // Drop deltas accumulated on every input: the rebuilt counts
        // already reflect the tables' current state.
        for input in 0..self.inputs.len() {
            let table = self.inputs[input].table.clone();
            let mut guard = table.lock();
            guard.drain_deltas(&self.inputs[input].sub, &mut self.scratch);
            self.scratch.clear();
        }
        let base_rows: Vec<Tuple> = {
            let table = self.inputs[0].table.clone();
            let guard = table.lock();
            if self.built {
                guard.note_rebuild();
            }
            guard.scan_iter_counted().cloned().collect()
        };
        let mut fresh: HashMap<Vec<Value>, usize> = HashMap::new();
        for row in &base_rows {
            self.derive(0, row, ctx);
            for t in self.derived.drain(..) {
                *fresh.entry(t.values().to_vec()).or_insert(0) += 1;
            }
        }
        let mut gone: Vec<Vec<Value>> = self
            .counts
            .keys()
            .filter(|k| !fresh.contains_key(*k))
            .cloned()
            .collect();
        gone.sort();
        let retract_port = self.retract_port();
        for values in gone {
            ctx.emit(retract_port, Tuple::new(&self.out_name, values));
        }
        self.counts = fresh;
        self.needs_rebuild = false;
        self.built = true;
    }
}

impl Element for MatView {
    fn class(&self) -> &'static str {
        "MatView"
    }

    fn push(&mut self, port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let held = self.sync_holdout(Some((port, tuple)), ctx);
        // Live emission for the poked trigger, identical to the fused
        // strand this input replaces: same executor, same out-port-`k`
        // routing the planner pads to the generic chain's BFS level.
        if port >= self.inputs.len() {
            return;
        }
        if held {
            // The poke's own insert delta was held out of the replay:
            // derive once, increment provenance, emit the same tuples.
            self.derive(port, tuple, ctx);
            for t in &self.derived {
                *self.counts.entry(t.values().to_vec()).or_insert(0) += 1;
            }
            let mut derived = std::mem::take(&mut self.derived);
            for t in derived.drain(..) {
                ctx.emit(port, t);
            }
            self.derived = derived;
            return;
        }
        let MatView {
            inputs,
            out_name,
            extras,
            eval_errors,
            ..
        } = self;
        let inp = &inputs[port];
        for filter in &inp.pre_filters {
            match filter.eval_bool(tuple, ctx.eval()) {
                Ok(true) => {}
                Ok(false) => return,
                Err(_) => {
                    *eval_errors += 1;
                    return;
                }
            }
        }
        extras.clear();
        exec(
            &inp.ops,
            &[tuple.values()],
            extras,
            &inp.head_fields,
            out_name,
            eval_errors,
            ctx,
            &mut |ctx: &mut ElementCtx<'_>, t| ctx.emit(port, t),
        );
    }

    fn on_start(&mut self, ctx: &mut ElementCtx<'_>) {
        self.sync(ctx);
    }

    /// A poke is a provable no-op only when (a) every input is quiet (no
    /// pending deltas, no rebuild owed — `sync` would take its fast path)
    /// and (b) the poked port's live derivation is deterministically dead:
    /// a rand-free pre-filter rejects the trigger. Anything else — pending
    /// deltas, a passing or RNG-bearing filter, an evaluation error (whose
    /// count must stay exact) — wakes. Pre-filters are pure expressions
    /// over the trigger, so pre-evaluating one here returns exactly what
    /// `push` would compute.
    fn would_wake(&self, port: usize, tuple: &Tuple, eval: &mut EvalContext) -> bool {
        if self.needs_rebuild || self.inputs.iter().any(|i| i.sub.has_pending()) {
            return true;
        }
        let Some(inp) = self.inputs.get(port) else {
            // Out-of-range poke (retract-port feedback, unwired in shipped
            // plans): after a quiet sync, `push` returns without effect.
            return false;
        };
        for f in &inp.pre_filters {
            if f.uses_random() {
                return true;
            }
            match f.eval_bool(tuple, eval) {
                Ok(true) => {}
                Ok(false) => return false,
                Err(_) => return true,
            }
        }
        true
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{Collector, Demux, FusedStrand, Insert};
    use crate::engine::{Engine, Graph, Route};
    use p2_pel::{BinOp, Expr};
    use p2_table::{Table, TableSpec};
    use p2_value::{SimTime, TupleBuilder};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn table(spec: TableSpec) -> TableRef {
        Arc::new(Mutex::new(Table::new(spec)))
    }

    fn field(i: usize) -> Program {
        Program::compile(&Expr::Field(i))
    }

    /// Harness: "link" tuples insert into the link table which pokes a
    /// single-input view `reach(S, D) :- link(S, D, _)`; "unlink" tuples
    /// delete. Live emissions land in `live`, retractions in `retracts`.
    struct Rig {
        engine: Engine,
        table: TableRef,
        live: crate::elements::CollectorHandle,
        retracts: crate::elements::CollectorHandle,
        view_id: usize,
    }

    fn link(s: &str, d: &str, w: i64) -> Tuple {
        TupleBuilder::new("link").push(s).push(d).push(w).build()
    }

    fn single_input_rig() -> Rig {
        rig_with_key(vec![0, 1])
    }

    fn rig_with_key(key: Vec<usize>) -> Rig {
        let t = table(TableSpec::new("link", key).with_lifetime_secs(10));
        let mut g = Graph::new();
        let demux = g.add(
            "demux",
            Box::new(Demux::new(vec!["link".into(), "unlink".into()])),
        );
        let ins = g.add("insert", Box::new(Insert::new(t.clone())));
        let del = g.add("delete", Box::new(crate::elements::Delete::new(t.clone())));
        let sub = t.lock().subscribe_deltas();
        let view = MatView::new(
            vec![ViewInput {
                table: t.clone(),
                sub,
                pre_filters: vec![],
                ops: vec![],
                head_fields: vec![field(0), field(1)],
            }],
            "reach",
        );
        let view_id = g.add("view", Box::new(view));
        let (c, live) = Collector::new();
        let live_id = g.add("live", Box::new(c));
        let (c, retracts) = Collector::new();
        let retract_id = g.add("retracts", Box::new(c));
        g.connect(demux, 0, ins, 0);
        g.connect(demux, 1, del, 0);
        g.connect(ins, 0, view_id, 0);
        g.connect(del, 0, view_id, 0);
        g.connect(view_id, 0, live_id, 0);
        g.connect(view_id, 1, retract_id, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: demux,
            port: 0,
        });
        engine.start(SimTime::ZERO);
        Rig {
            engine,
            table: t,
            live,
            retracts,
            view_id,
        }
    }

    fn view_contents(engine: &mut Engine, id: usize) -> Vec<(Vec<Value>, usize)> {
        engine
            .with_element(id, |e| {
                e.as_any_mut()
                    .and_then(|a| a.downcast_mut::<MatView>())
                    .map(|v| v.contents())
            })
            .flatten()
            .unwrap()
    }

    #[test]
    fn live_emission_matches_fused_strand() {
        // The poke-driven path must be exactly FusedStrand's.
        let succ = {
            let mut t = Table::new(TableSpec::new("succ", vec![1]));
            t.add_index(vec![0]);
            for (s, si) in [(5i64, "n5"), (9, "n9")] {
                t.insert(
                    TupleBuilder::new("succ")
                        .push("n1")
                        .push(s)
                        .push(si)
                        .build(),
                    SimTime::ZERO,
                )
                .unwrap();
            }
            Arc::new(Mutex::new(t))
        };
        let mk_ops = || {
            vec![
                FusedStrand::probe_op(succ.clone(), vec![(0, 0)]),
                StrandOp::Filter(Program::compile(&Expr::bin(
                    BinOp::Gt,
                    Expr::Field(3),
                    Expr::int(4),
                ))),
            ]
        };
        let run = |element: Box<dyn Element>| -> Vec<Tuple> {
            let mut g = Graph::new();
            let e = g.add("elt", element);
            let (c, buf) = Collector::new();
            let c = g.add("tap", Box::new(c));
            g.connect(e, 0, c, 0);
            let mut engine = Engine::new(g, "n1", 1);
            engine.set_entry(Route {
                element: e,
                port: 0,
            });
            engine.start(SimTime::ZERO);
            engine.deliver(
                TupleBuilder::new("ev").push("n1").push(100i64).build(),
                SimTime::from_secs(1),
            );
            let out = buf.lock().iter().map(|(_, t)| t.clone()).collect();
            out
        };
        let strand = FusedStrand::new(vec![], mk_ops(), vec![field(4), field(3)], "out");
        let trigger = table(TableSpec::new("ev", vec![0]));
        let sub = trigger.lock().subscribe_deltas();
        let view = MatView::new(
            vec![ViewInput {
                table: trigger,
                sub,
                pre_filters: vec![],
                ops: mk_ops(),
                head_fields: vec![field(4), field(3)],
            }],
            "out",
        );
        assert_eq!(run(Box::new(strand)), run(Box::new(view)));
    }

    #[test]
    fn view_counts_track_inserts_and_deletes() {
        let mut rig = single_input_rig();
        rig.engine.deliver(link("a", "b", 1), SimTime::from_secs(1));
        rig.engine.deliver(link("a", "c", 1), SimTime::from_secs(1));
        assert_eq!(
            view_contents(&mut rig.engine, rig.view_id),
            vec![
                (vec![Value::str("a"), Value::str("b")], 1),
                (vec![Value::str("a"), Value::str("c")], 1),
            ]
        );
        assert_eq!(rig.live.lock().len(), 2);
        assert!(rig.retracts.lock().is_empty());

        // Delete one row: its derived head retracts.
        let unlink = TupleBuilder::new("unlink")
            .push("a")
            .push("b")
            .push(1i64)
            .build();
        rig.engine.deliver(unlink, SimTime::from_secs(2));
        // The view only observes the delete at its next poke.
        rig.engine.deliver(link("a", "d", 1), SimTime::from_secs(3));
        assert_eq!(
            view_contents(&mut rig.engine, rig.view_id),
            vec![
                (vec![Value::str("a"), Value::str("c")], 1),
                (vec![Value::str("a"), Value::str("d")], 1),
            ]
        );
        let retracted: Vec<Tuple> = rig.retracts.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(retracted.len(), 1);
        assert_eq!(retracted[0].values(), &[Value::str("a"), Value::str("b")]);
        assert_eq!(retracted[0].name(), "reach");
    }

    /// The provenance-count case: two stored rows derive the *same* head
    /// tuple (the projection drops the distinguishing column). Removing
    /// one derivation must not retract; removing the last one must.
    #[test]
    fn duplicate_derivations_retract_on_last_removal() {
        // Key over all three columns so equal-(S, D) rows coexist instead
        // of replacing each other.
        let mut rig = rig_with_key(vec![0, 1, 2]);
        // Same (S, D), different weight — two derivations of reach(a, b).
        rig.engine.deliver(link("a", "b", 1), SimTime::from_secs(1));
        rig.engine.deliver(link("a", "b", 2), SimTime::from_secs(1));
        assert_eq!(
            view_contents(&mut rig.engine, rig.view_id),
            vec![(vec![Value::str("a"), Value::str("b")], 2)]
        );

        let unlink = |w: i64| {
            TupleBuilder::new("unlink")
                .push("a")
                .push("b")
                .push(w)
                .build()
        };
        rig.engine.deliver(unlink(1), SimTime::from_secs(2));
        rig.engine.deliver(link("x", "y", 0), SimTime::from_secs(3)); // poke
        assert_eq!(
            view_contents(&mut rig.engine, rig.view_id)
                .iter()
                .find(|(k, _)| k[0] == Value::str("a"))
                .map(|(_, c)| *c),
            Some(1),
            "count decremented without retraction"
        );
        assert!(rig.retracts.lock().is_empty());

        rig.engine.deliver(unlink(2), SimTime::from_secs(4));
        rig.engine.deliver(link("x", "z", 0), SimTime::from_secs(5)); // poke
        let retracted: Vec<Tuple> = rig.retracts.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(retracted.len(), 1);
        assert_eq!(retracted[0].values(), &[Value::str("a"), Value::str("b")]);
    }

    /// Regression mirroring PR 3's vanished-group bug: deleting every row
    /// must empty the view (and retract), not leave stale derived rows —
    /// and a re-insert re-derives from scratch.
    #[test]
    fn delete_to_empty_view_retracts_everything() {
        let mut rig = single_input_rig();
        rig.engine.deliver(link("a", "b", 1), SimTime::from_secs(1));
        let unlink = TupleBuilder::new("unlink")
            .push("a")
            .push("b")
            .push(1i64)
            .build();
        rig.engine.deliver(unlink, SimTime::from_secs(2));
        assert!(rig.table.lock().is_empty());
        // Poke via an unrelated insert+delete pair so the view syncs.
        rig.engine.deliver(link("x", "y", 0), SimTime::from_secs(3));
        let contents = view_contents(&mut rig.engine, rig.view_id);
        assert_eq!(contents, vec![(vec![Value::str("x"), Value::str("y")], 1)]);
        let retracted: Vec<Tuple> = rig.retracts.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(retracted.len(), 1);
        assert_eq!(retracted[0].values(), &[Value::str("a"), Value::str("b")]);

        // Re-insert: the view re-derives (provenance was dropped, not
        // pinned at a stale zero).
        rig.engine.deliver(link("a", "b", 1), SimTime::from_secs(4));
        assert_eq!(
            view_contents(&mut rig.engine, rig.view_id),
            vec![
                (vec![Value::str("a"), Value::str("b")], 1),
                (vec![Value::str("x"), Value::str("y")], 1),
            ]
        );
    }

    /// A keyed re-insert (replacement) whose changed column the rule
    /// projects away nets to nothing: counts untouched, no transient
    /// retraction — only the live re-emission.
    #[test]
    fn replacement_of_ignored_column_nets_out() {
        // Key (0, 1); head projects fields 0 and 1 — the weight column 2
        // is never read, so bumping it is invisible to the view.
        let mut rig = single_input_rig();
        rig.engine.deliver(link("a", "b", 1), SimTime::from_secs(1));
        rig.engine.deliver(link("a", "b", 2), SimTime::from_secs(2));
        assert_eq!(
            view_contents(&mut rig.engine, rig.view_id),
            vec![(vec![Value::str("a"), Value::str("b")], 1)]
        );
        assert!(
            rig.retracts.lock().is_empty(),
            "netted: no transient retract"
        );
        assert_eq!(rig.live.lock().len(), 2, "refresh still re-emits");
    }

    /// The guard on netting: when the replaced column IS read by the
    /// strand, the old head must retract and the new one must count.
    #[test]
    fn replacement_of_read_column_retracts_old_head() {
        let t = table(TableSpec::new("link", vec![0, 1]).with_lifetime_secs(10));
        let mut g = Graph::new();
        let demux = g.add("demux", Box::new(Demux::new(vec!["link".into()])));
        let ins = g.add("insert", Box::new(Insert::new(t.clone())));
        let sub = t.lock().subscribe_deltas();
        let view = MatView::new(
            vec![ViewInput {
                table: t.clone(),
                sub,
                pre_filters: vec![],
                ops: vec![],
                head_fields: vec![field(0), field(2)],
            }],
            "reach",
        );
        let view_id = g.add("view", Box::new(view));
        let (c, retracts) = Collector::new();
        let retract_id = g.add("retracts", Box::new(c));
        g.connect(demux, 0, ins, 0);
        g.connect(ins, 0, view_id, 0);
        g.connect(view_id, 1, retract_id, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: demux,
            port: 0,
        });
        engine.start(SimTime::ZERO);
        engine.deliver(link("a", "b", 1), SimTime::from_secs(1));
        engine.deliver(link("a", "b", 2), SimTime::from_secs(2));
        assert_eq!(
            view_contents(&mut engine, view_id),
            vec![(vec![Value::str("a"), Value::Int(2)], 1)]
        );
        let retracted: Vec<Tuple> = retracts.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(retracted.len(), 1);
        assert_eq!(retracted[0].values(), &[Value::str("a"), Value::Int(1)]);
    }

    /// Expiry feeds the same retraction machinery as explicit deletes.
    #[test]
    fn expiry_retracts_derived_rows() {
        let mut rig = single_input_rig();
        rig.engine.deliver(link("a", "b", 1), SimTime::from_secs(1));
        assert_eq!(rig.table.lock().expire(SimTime::from_secs(20)).len(), 1);
        rig.engine
            .deliver(link("x", "y", 0), SimTime::from_secs(21)); // poke
        let retracted: Vec<Tuple> = rig.retracts.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(retracted.len(), 1);
        assert_eq!(retracted[0].values(), &[Value::str("a"), Value::str("b")]);
    }

    /// Overflowing the delta queue forces a rebuild that restores exact
    /// counts and retracts rows that vanished while the queue was blind.
    #[test]
    fn overflow_rebuild_restores_counts() {
        let mut rig = single_input_rig();
        rig.engine
            .deliver(link("a", "gone", 1), SimTime::from_secs(1));
        {
            // Mutate far past DELTA_LOG_CAP without poking the view.
            let mut t = rig.table.lock();
            for i in 0..(p2_table::DELTA_LOG_CAP as i64 + 8) {
                t.insert(link("bulk", "d", i), SimTime::from_secs(2))
                    .unwrap();
            }
            t.delete_matching(&link("a", "gone", 1)).unwrap();
        }
        rig.engine.deliver(link("x", "y", 0), SimTime::from_secs(3)); // poke
        let contents = view_contents(&mut rig.engine, rig.view_id);
        assert_eq!(
            contents,
            vec![
                (vec![Value::str("bulk"), Value::str("d")], 1),
                (vec![Value::str("x"), Value::str("y")], 1),
            ]
        );
        let retracted: Vec<Tuple> = rig.retracts.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(retracted.len(), 1, "vanished row retracts via rebuild");
        assert_eq!(
            retracted[0].values(),
            &[Value::str("a"), Value::str("gone")]
        );
        assert!(rig.table.lock().stats().rebuilds >= 1);
    }
}
