//! Interned node identifiers.
//!
//! The public [`Host`](crate::Host) API addresses nodes by string (that is
//! what OverLog tuples carry on the wire), but everything inside the event
//! loop runs on dense [`NodeId`]s: slot lookup, timer indexing, domain and
//! latency resolution are all plain array loads instead of `String` hashing.
//! The [`AddrInterner`] owns the bidirectional mapping; an address is
//! resolved to its `NodeId` exactly once per packet, at dispatch.

use std::collections::HashMap;
use std::sync::Arc;

/// A dense, interned identifier for a simulated node.
///
/// Ids are assigned sequentially by [`AddrInterner::intern`] and never
/// reused: a node that crashes and rejoins under the same address keeps its
/// id (the simulator swaps the host in the slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The slot index this id denotes.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("more than u32::MAX simulated nodes"))
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional address ⇄ [`NodeId`] mapping.
#[derive(Debug, Default)]
pub struct AddrInterner {
    by_addr: HashMap<Arc<str>, NodeId>,
    addrs: Vec<Arc<str>>,
}

impl AddrInterner {
    /// Creates an empty interner.
    pub fn new() -> AddrInterner {
        AddrInterner::default()
    }

    /// Returns the id for `addr`, allocating a fresh one on first sight.
    pub fn intern(&mut self, addr: &str) -> NodeId {
        if let Some(id) = self.by_addr.get(addr) {
            return *id;
        }
        let arc: Arc<str> = Arc::from(addr);
        let id = NodeId::from_index(self.addrs.len());
        self.addrs.push(arc.clone());
        self.by_addr.insert(arc, id);
        id
    }

    /// The id previously assigned to `addr`, if any. Allocation-free.
    #[inline]
    pub fn get(&self, addr: &str) -> Option<NodeId> {
        self.by_addr.get(addr).copied()
    }

    /// The address behind `id`.
    #[inline]
    pub fn addr(&self, id: NodeId) -> &str {
        &self.addrs[id.index()]
    }

    /// The address behind `id` as a cheaply clonable `Arc<str>`.
    #[inline]
    pub fn addr_arc(&self, id: NodeId) -> &Arc<str> {
        &self.addrs[id.index()]
    }

    /// Number of interned addresses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// All interned addresses in id order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.addrs.iter().map(|a| a.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut i = AddrInterner::new();
        let a = i.intern("n0");
        let b = i.intern("n1");
        assert_ne!(a, b);
        assert_eq!(i.intern("n0"), a);
        assert_eq!(i.get("n1"), Some(b));
        assert_eq!(i.get("n2"), None);
        assert_eq!(i.addr(a), "n0");
        assert_eq!(i.addr(b), "n1");
        assert_eq!(i.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec!["n0", "n1"]);
        assert_eq!(format!("{b}"), "#1");
    }
}
