//! Golden determinism test: the simulator must produce bit-identical
//! traffic statistics for a fixed seed, across runs and across refactors of
//! the event core (NodeId interner, timer index).

use p2_harness::ChordCluster;

fn ring_stats(n: usize, warmup: u64, seed: u64) -> (u64, u64, u64, u64) {
    let mut cluster = ChordCluster::build(n, warmup, seed);
    cluster.sim.reset_stats();
    cluster.run_for(60.0);
    let s = cluster.sim.stats();
    (
        s.messages_sent,
        s.messages_delivered,
        s.messages_dropped,
        s.bytes_sent,
    )
}

#[test]
fn hundred_node_ring_matches_golden_stats() {
    let a = ring_stats(100, 120, 42);
    eprintln!("100-node ring stats: {a:?}");
    // Golden values captured from the pre-refactor (PR 1) simulator: the
    // NodeId/timer-index overhaul reproduces the seed's event stream
    // bit-for-bit. Update these only for a deliberate semantic change.
    assert_eq!(
        a,
        (29_634, 29_638, 0, 2_787_660),
        "fixed-seed NetStats diverged from the golden run"
    );
    let b = ring_stats(100, 120, 42);
    assert_eq!(a, b, "same seed must give identical NetStats across runs");
}
