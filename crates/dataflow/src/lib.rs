//! The P2 dataflow framework.
//!
//! P2 executes overlay specifications as graphs of small dataflow *elements*
//! in the style of the Click modular router: each element has input and
//! output ports, tuples flow along the edges, and a per-node engine drives
//! the graph to completion for every external event (timer firing or packet
//! arrival), mirroring the single-threaded, run-to-completion `libasync`
//! loop of the original system.
//!
//! The crate provides:
//!
//! * [`Element`] and [`ElementCtx`] — the element interface;
//! * [`Engine`] and [`Graph`] — per-node execution: an explicit work queue
//!   (push semantics), a timer wheel, network send collection, and runtime
//!   statistics;
//! * [`elements`] — the element library used by the OverLog planner:
//!   demultiplexers, queues, equijoins, anti-joins, selections, projections,
//!   per-event and materialized aggregates, table insert/delete bridges,
//!   periodic event sources, network output, and debugging taps.
//!
//! # Incremental dataflow
//!
//! Stored tables publish their mutations as per-subscriber delta streams
//! (`p2_table::Table::subscribe_deltas`: `Insert`, `Delete`, `Expire`,
//! `Evict`, with replacement encoded as a Delete/Insert pair). Three
//! elements consume them instead of rescanning their base tables:
//! [`elements::TableAgg`] (materialized aggregates maintained per delta),
//! [`elements::AggProbe`] in delta-fed mode (cached per-event-class
//! contributions for in-strand aggregation), and [`elements::MatView`]
//! (provenance-counted join views with exact retractions). All three share
//! the same fallback contract: a bounded per-subscriber delta log
//! (`p2_table::DELTA_LOG_CAP`) whose overflow — or any detected
//! incoherence — triggers a rebuild from a counted scan that restores
//! bit-for-bit the rescanning behaviour, observable via
//! `p2_table::TableStats` (`overflows`, `rebuilds`, `full_scans`). All
//! three also share the quiet fast path: a subscription's lock-free
//! pending flag (`p2_table::DeltaSubscription::has_pending`) lets a sync
//! poked on every event cost one atomic load — no table lock, no drain —
//! when nothing changed, which under refresh-heavy workloads (pure
//! refreshes log no delta) is the overwhelmingly common case.
//!
//! Deviation from the 2005 C++ implementation: the original uses push *and*
//! pull ports with continuation callbacks for flow control; here every edge
//! is push-driven from an explicit FIFO work queue and back-pressure is
//! exercised at the network boundary by the simulator (see DESIGN.md §5.1).

pub mod element;
pub mod elements;
pub mod engine;

pub use element::{Element, ElementCtx, Outgoing};
pub use engine::{Engine, EngineStats, Graph, Route};
