//! Cross-crate integration tests: every shipped overlay running end-to-end
//! over the simulated network, exercising the full
//! OverLog → planner → dataflow → simulator stack.

use p2_suite::prelude::*;

fn addrs(prefix: &str, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}{i}:9000")).collect()
}

#[test]
fn narada_membership_converges_to_full_mesh_knowledge() {
    let n = 6;
    let addrs = addrs("mesh", n);
    let mut sim: Simulator<P2Host> = Simulator::new(NetworkConfig::emulab_default(21));
    for i in 0..n {
        let neighbors: Vec<&str> = if i == 0 {
            vec![]
        } else {
            vec![addrs[i - 1].as_str()]
        };
        let host = narada::build_node(&addrs[i], &neighbors, 70 + i as u64, true).unwrap();
        sim.add_node(addrs[i].clone(), host);
    }
    for a in &addrs {
        sim.start_node(a);
    }
    sim.run_until(SimTime::from_secs(180));

    // Every node should have learned about (nearly) every other member via
    // epidemic refresh propagation along the line of seed neighbours.
    for a in &addrs {
        let members = sim
            .node(a)
            .unwrap()
            .node()
            .table("member")
            .unwrap()
            .lock()
            .len();
        assert!(
            members >= n - 2,
            "{a} only knows {members} members of a {n}-node mesh"
        );
    }

    // Mesh links became mutual: node 0 started with no neighbours but must
    // have gained some from incoming refreshes.
    let n0_neighbors = sim
        .node(&addrs[0])
        .unwrap()
        .node()
        .table("neighbor")
        .unwrap()
        .lock()
        .len();
    assert!(n0_neighbors >= 1);
}

#[test]
fn narada_declares_dead_neighbors_after_silence() {
    let n = 3;
    let addrs = addrs("dead", n);
    let mut sim: Simulator<P2Host> = Simulator::new(NetworkConfig::emulab_default(5));
    for i in 0..n {
        let neighbors: Vec<&str> = addrs
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, a)| a.as_str())
            .collect();
        let host = narada::build_node(&addrs[i], &neighbors, 5 + i as u64, true).unwrap();
        sim.add_node(addrs[i].clone(), host);
    }
    for a in &addrs {
        sim.start_node(a);
    }
    sim.run_until(SimTime::from_secs(60));

    // Kill node 2 and let the 20-second liveness threshold pass.
    sim.take_down(&addrs[2]);
    sim.run_until(SimTime::from_secs(150));

    // The survivors should have dropped the dead node from their neighbour
    // tables (rule L3) and marked its member entry dead (rule L4).
    for a in &addrs[..2] {
        let node = sim.node(a).unwrap().node();
        let neighbors = node.table("neighbor").unwrap().lock().scan();
        assert!(
            !neighbors
                .iter()
                .any(|t| t.field(1).to_display_string() == addrs[2]),
            "{a} still lists the dead node as a neighbour"
        );
        let members = node.table("member").unwrap().lock().scan();
        let dead_entry = members
            .iter()
            .find(|t| t.field(1).to_display_string() == addrs[2])
            .expect("member entry for the dead node exists");
        assert_eq!(
            dead_entry.field(4),
            &Value::Int(0),
            "member not marked dead"
        );
    }
}

#[test]
fn latency_monitor_measures_round_trip_times() {
    let a = "mon0:9000";
    let b = "mon1:9000";
    let mut sim: Simulator<P2Host> = Simulator::new(NetworkConfig::emulab_default(9));
    sim.add_node(a, monitor::build_node(a, &[b], 1, true).unwrap());
    sim.add_node(b, monitor::build_node(b, &[a], 2, true).unwrap());
    sim.start_node(a);
    sim.start_node(b);
    sim.run_until(SimTime::from_secs(60));

    let latencies = sim
        .node(a)
        .unwrap()
        .node()
        .table("latency")
        .unwrap()
        .lock()
        .scan();
    assert!(!latencies.is_empty(), "no latency measurements recorded");
    for row in latencies {
        let rtt = row.field(2).to_double().unwrap();
        // The two monitor nodes land in different Emulab domains, so the RTT
        // is ~208 ms plus serialization; it must never be negative or huge.
        assert!(rtt > 0.1 && rtt < 1.0, "implausible RTT {rtt}");
    }
}

#[test]
fn gossip_rumor_reaches_every_node() {
    let n = 10;
    let addrs = addrs("gossip", n);
    let mut sim: Simulator<P2Host> = Simulator::new(NetworkConfig::emulab_default(17));
    for i in 0..n {
        let peers: Vec<String> = (1..=2).map(|k| addrs[(i + k * 3) % n].clone()).collect();
        let peer_refs: Vec<&str> = peers.iter().map(String::as_str).collect();
        let host = gossip::build_node(&addrs[i], &peer_refs, 200 + i as u64, true).unwrap();
        sim.add_node(addrs[i].clone(), host);
    }
    for a in &addrs {
        sim.start_node(a);
    }
    sim.inject(&addrs[3], gossip::rumor_tuple(&addrs[3], 99, "payload"));
    sim.run_until(SimTime::from_secs(90));

    let infected = addrs
        .iter()
        .filter(|a| {
            !sim.node(a)
                .unwrap()
                .node()
                .table("rumor")
                .unwrap()
                .lock()
                .is_empty()
        })
        .count();
    assert_eq!(infected, n, "rumor did not reach every node");
}

#[test]
fn declarative_and_baseline_chord_agree_on_lookup_owners() {
    let n = 6;
    let mut p2 = ChordCluster::build(n, 120, 31);
    let mut base = BaselineCluster::build(n, 150, 31);
    assert!(p2.ring_correctness() > 0.99);
    assert!(base.ring_correctness() > 0.99);

    let mut agreements = 0;
    let total = 8;
    for i in 0..total {
        let key = Uint160::hash_of(format!("agree-{i}").as_bytes());
        let p2_origin = p2.addrs()[i % n].clone();
        let base_origin = base.addrs()[(i + 1) % n].clone();
        let hp = p2.issue_lookup_from(&p2_origin, key);
        let hb = base.issue_lookup_from(&base_origin, key);
        p2.run_for(8.0);
        base.run_for(8.0);
        let op = p2.outcome(&hp).map(|o| o.owner);
        let ob = base.outcome(&hb).map(|o| o.owner);
        if op.is_some() && op == ob {
            agreements += 1;
        }
    }
    assert!(
        agreements >= total - 1,
        "declarative and baseline Chord disagreed too often ({agreements}/{total})"
    );
}
