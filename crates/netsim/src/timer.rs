//! Tombstone-free node-wakeup index.
//!
//! The seed simulator pushed wakeups into the same `BinaryHeap` as packet
//! deliveries and could only *add* entries: when a node's next deadline moved
//! earlier, the superseded entry stayed in the heap and later fired as a
//! spurious `advance_to` call (which in turn re-scheduled, leaving duplicate
//! entries — unbounded tombstone churn under load). This index mirrors the
//! table layer's staleness queue instead: one ordered set of
//! `(SimTime, seq, NodeId)` plus a per-node mirror, so rescheduling a node's
//! timer is an O(log n) remove+insert and *every* entry that fires is live.
//!
//! Entries carry the simulator's global event sequence number so that
//! wakeups and packet deliveries falling on the same microsecond keep the
//! seed's deterministic `(time, seq)` tie-break.

use p2_value::SimTime;
use std::collections::BTreeSet;

use crate::id::NodeId;

/// Indexed per-node wakeup deadlines: at most one entry per node, updated in
/// place.
#[derive(Debug, Default)]
pub(crate) struct TimerIndex {
    queue: BTreeSet<(SimTime, u64, NodeId)>,
    /// Mirror of `queue` keyed by node (index = `NodeId::index()`), for O(1)
    /// lookup of the entry to cancel.
    entries: Vec<Option<(SimTime, u64)>>,
}

impl TimerIndex {
    /// Ensures the mirror covers node ids up to `n - 1`.
    pub fn grow(&mut self, n: usize) {
        if self.entries.len() < n {
            self.entries.resize(n, None);
        }
    }

    /// Sets (or replaces) the node's wakeup deadline.
    ///
    /// `seq` is the scheduling order stamp used to break ties between events
    /// at the same instant; it is kept from the previous entry when the
    /// deadline is unchanged.
    pub fn set(&mut self, id: NodeId, deadline: SimTime, seq: u64) {
        match self.entries[id.index()] {
            Some((at, _)) if at == deadline => return,
            Some((at, old_seq)) => {
                self.queue.remove(&(at, old_seq, id));
            }
            None => {}
        }
        self.entries[id.index()] = Some((deadline, seq));
        self.queue.insert((deadline, seq, id));
    }

    /// Cancels the node's wakeup, if one is scheduled.
    pub fn cancel(&mut self, id: NodeId) {
        if let Some((at, seq)) = self.entries[id.index()].take() {
            self.queue.remove(&(at, seq, id));
        }
    }

    /// The node's scheduled deadline, if any.
    pub fn deadline_of(&self, id: NodeId) -> Option<SimTime> {
        self.entries.get(id.index()).copied().flatten().map(|e| e.0)
    }

    /// The earliest scheduled wakeup as `(deadline, seq, node)`.
    #[inline]
    pub fn peek(&self) -> Option<(SimTime, u64, NodeId)> {
        self.queue.first().copied()
    }

    /// Removes and returns the earliest wakeup.
    #[inline]
    pub fn pop_first(&mut self) -> Option<(SimTime, NodeId)> {
        let (at, _, id) = self.queue.pop_first()?;
        self.entries[id.index()] = None;
        Some((at, id))
    }

    /// Number of scheduled wakeups.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Verifies the queue and the per-node mirror agree; panics with a
    /// description of the first mismatch. Test support, mirroring
    /// `p2_table`'s `check_consistency`.
    pub fn check_consistency(&self) {
        assert_eq!(
            self.queue.len(),
            self.entries.iter().filter(|d| d.is_some()).count(),
            "timer queue and deadline mirror disagree on entry count"
        );
        for &(at, seq, id) in &self.queue {
            assert_eq!(
                self.entries.get(id.index()).copied().flatten(),
                Some((at, seq)),
                "timer queue entry ({at}, {seq}, {id}) not mirrored"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn set_replaces_instead_of_accumulating() {
        let mut t = TimerIndex::default();
        t.grow(3);
        t.set(id(0), SimTime::from_secs(10), 1);
        t.set(id(1), SimTime::from_secs(4), 2);
        // Rescheduling earlier *and* later both replace the old entry.
        t.set(id(0), SimTime::from_secs(2), 3);
        t.set(id(1), SimTime::from_secs(7), 4);
        assert_eq!(t.len(), 2);
        assert_eq!(t.peek(), Some((SimTime::from_secs(2), 3, id(0))));
        t.check_consistency();

        assert_eq!(t.pop_first(), Some((SimTime::from_secs(2), id(0))));
        assert_eq!(t.deadline_of(id(0)), None);
        assert_eq!(t.deadline_of(id(1)), Some(SimTime::from_secs(7)));
        t.check_consistency();
    }

    #[test]
    fn cancel_removes_the_entry() {
        let mut t = TimerIndex::default();
        t.grow(2);
        t.set(id(1), SimTime::from_secs(3), 1);
        t.cancel(id(1));
        assert_eq!(t.len(), 0);
        assert_eq!(t.pop_first(), None);
        // Cancelling an unscheduled node is a no-op.
        t.cancel(id(0));
        t.check_consistency();
    }

    #[test]
    fn unchanged_deadline_keeps_the_original_sequence_stamp() {
        let mut t = TimerIndex::default();
        t.grow(1);
        t.set(id(0), SimTime::from_secs(5), 1);
        t.set(id(0), SimTime::from_secs(5), 9);
        assert_eq!(t.len(), 1);
        assert_eq!(t.peek(), Some((SimTime::from_secs(5), 1, id(0))));
        t.check_consistency();
    }
}
