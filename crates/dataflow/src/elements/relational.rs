//! Relational operator elements: equijoin, anti-join, selection, projection.

use p2_pel::Program;
use p2_table::TableRef;
use p2_value::{Tuple, Value};

use crate::element::{Element, ElementCtx};

/// Stream × table equijoin.
///
/// The arriving tuple (the *stream* side, typically an event) probes the
/// materialized table on equality of the configured key columns; every match
/// is emitted as the concatenation `stream ++ table_row` under `out_name`.
/// This is the workhorse of OverLog rule bodies — "the unification of
/// variables in the body of a rule is implemented by an equality-based
/// relational join" (§2.4).
pub struct Join {
    table: TableRef,
    /// Pairs of (stream field, table field) that must be equal.
    key: Vec<(usize, usize)>,
    out_name: String,
}

impl Join {
    /// Creates an equijoin against `table` on the given key pairs.
    pub fn new(table: TableRef, key: Vec<(usize, usize)>, out_name: impl Into<String>) -> Join {
        Join {
            table,
            key,
            out_name: out_name.into(),
        }
    }
}

impl Element for Join {
    fn class(&self) -> &'static str {
        "Join"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let probe: Option<Vec<Value>> = self
            .key
            .iter()
            .map(|(s, _)| tuple.get(*s).ok().cloned())
            .collect();
        let Some(probe) = probe else { return };
        let table_cols: Vec<usize> = self.key.iter().map(|(_, t)| *t).collect();
        let matches = if table_cols.is_empty() {
            self.table.lock().scan()
        } else {
            self.table.lock().lookup(&table_cols, &probe)
        };
        for row in matches {
            ctx.emit(0, tuple.join(&self.out_name, &row));
        }
    }
}

/// Stream × table anti-join (negation).
///
/// Forwards the arriving tuple unchanged when **no** table row matches the
/// key columns; used to implement `not member(...)`-style body terms.
pub struct AntiJoin {
    table: TableRef,
    key: Vec<(usize, usize)>,
}

impl AntiJoin {
    /// Creates an anti-join against `table` on the given key pairs.
    pub fn new(table: TableRef, key: Vec<(usize, usize)>) -> AntiJoin {
        AntiJoin { table, key }
    }
}

impl Element for AntiJoin {
    fn class(&self) -> &'static str {
        "AntiJoin"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let probe: Option<Vec<Value>> = self
            .key
            .iter()
            .map(|(s, _)| tuple.get(*s).ok().cloned())
            .collect();
        let Some(probe) = probe else { return };
        let table_cols: Vec<usize> = self.key.iter().map(|(_, t)| *t).collect();
        let any_match = if table_cols.is_empty() {
            !self.table.lock().is_empty()
        } else {
            !self.table.lock().lookup(&table_cols, &probe).is_empty()
        };
        if !any_match {
            ctx.emit(0, tuple.clone());
        }
    }
}

/// Selection: forwards tuples for which the PEL filter evaluates to true.
///
/// Evaluation errors drop the tuple (a malformed remote tuple must not take
/// the node down); the number of such drops is recorded.
pub struct Select {
    filter: Program,
    /// Tuples dropped because the filter raised an evaluation error.
    pub eval_errors: u64,
}

impl Select {
    /// Creates a selection from a compiled PEL predicate.
    pub fn new(filter: Program) -> Select {
        Select {
            filter,
            eval_errors: 0,
        }
    }
}

impl Element for Select {
    fn class(&self) -> &'static str {
        "Select"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        match self.filter.eval_bool(tuple, ctx.eval()) {
            Ok(true) => ctx.emit(0, tuple.clone()),
            Ok(false) => {}
            Err(_) => self.eval_errors += 1,
        }
    }
}

/// Projection: builds the head tuple by evaluating one PEL program per output
/// field ("a 'project' element implements a superset of a purely logical
/// database projection operator by running a PEL program on each incoming
/// tuple", §3.4).
pub struct Project {
    out_name: String,
    fields: Vec<Program>,
    /// Tuples dropped because a field program raised an evaluation error.
    pub eval_errors: u64,
}

impl Project {
    /// Creates a projection producing tuples named `out_name`.
    pub fn new(out_name: impl Into<String>, fields: Vec<Program>) -> Project {
        Project {
            out_name: out_name.into(),
            fields,
            eval_errors: 0,
        }
    }
}

impl Element for Project {
    fn class(&self) -> &'static str {
        "Project"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let mut values = Vec::with_capacity(self.fields.len());
        for program in &self.fields {
            match program.eval(tuple, ctx.eval()) {
                Ok(v) => values.push(v),
                Err(_) => {
                    self.eval_errors += 1;
                    return;
                }
            }
        }
        ctx.emit(0, Tuple::new(&self.out_name, values));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Collector;
    use crate::engine::{Engine, Graph, Route};
    use p2_pel::{BinOp, Expr};
    use p2_table::{Table, TableSpec};
    use p2_value::{SimTime, TupleBuilder};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn succ_table() -> TableRef {
        let mut t = Table::new(TableSpec::new("succ", vec![1]));
        t.add_index(vec![0]);
        for (s, si) in [(5i64, "n5"), (9, "n9")] {
            t.insert(
                TupleBuilder::new("succ").push("n1").push(s).push(si).build(),
                SimTime::ZERO,
            )
            .unwrap();
        }
        Arc::new(Mutex::new(t))
    }

    fn run_one(element: Box<dyn Element>, input: Tuple) -> Vec<Tuple> {
        let mut g = Graph::new();
        let e = g.add("elt", element);
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(e, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route { element: e, port: 0 });
        engine.deliver(input, SimTime::ZERO);
        let out = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        out
    }

    #[test]
    fn join_emits_one_tuple_per_match() {
        let table = succ_table();
        let join = Join::new(table, vec![(0, 0)], "ev_succ");
        let input = TupleBuilder::new("ev").push("n1").push(42i64).build();
        let out = run_one(Box::new(join), input);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|t| t.name() == "ev_succ" && t.arity() == 5));
        // Stream fields come first, then the table row.
        assert_eq!(out[0].field(1), &Value::Int(42));
    }

    #[test]
    fn join_with_no_match_emits_nothing() {
        let table = succ_table();
        let join = Join::new(table, vec![(0, 0)], "ev_succ");
        let input = TupleBuilder::new("ev").push("n2").build();
        assert!(run_one(Box::new(join), input).is_empty());
    }

    #[test]
    fn join_on_empty_key_is_cartesian_with_table() {
        let table = succ_table();
        let join = Join::new(table, vec![], "ev_succ");
        let input = TupleBuilder::new("ev").push("whatever").build();
        assert_eq!(run_one(Box::new(join), input).len(), 2);
    }

    #[test]
    fn antijoin_forwards_only_non_matching() {
        let table = succ_table();
        let anti = AntiJoin::new(table.clone(), vec![(0, 0)]);
        let hit = TupleBuilder::new("ev").push("n1").build();
        assert!(run_one(Box::new(anti), hit).is_empty());

        let anti = AntiJoin::new(table, vec![(0, 0)]);
        let miss = TupleBuilder::new("ev").push("n7").build();
        assert_eq!(run_one(Box::new(anti), miss).len(), 1);
    }

    #[test]
    fn select_filters_and_survives_errors() {
        let filter = Program::compile(&Expr::bin(BinOp::Gt, Expr::Field(1), Expr::int(5)));
        let sel = Select::new(filter);
        let keep = TupleBuilder::new("x").push("n1").push(9i64).build();
        assert_eq!(run_one(Box::new(sel), keep).len(), 1);

        let filter = Program::compile(&Expr::bin(BinOp::Gt, Expr::Field(1), Expr::int(5)));
        let sel = Select::new(filter);
        let drop = TupleBuilder::new("x").push("n1").push(3i64).build();
        assert!(run_one(Box::new(sel), drop).is_empty());

        // A tuple that is too short triggers an evaluation error and is
        // dropped without panicking.
        let filter = Program::compile(&Expr::bin(BinOp::Gt, Expr::Field(1), Expr::int(5)));
        let sel = Select::new(filter);
        let short = TupleBuilder::new("x").push("n1").build();
        assert!(run_one(Box::new(sel), short).is_empty());
    }

    #[test]
    fn project_reorders_and_computes() {
        let fields = vec![
            Program::compile(&Expr::Field(2)),
            Program::compile(&Expr::bin(BinOp::Add, Expr::Field(1), Expr::int(1))),
        ];
        let proj = Project::new("out", fields);
        let input = TupleBuilder::new("in").push("n1").push(10i64).push("n9").build();
        let out = run_one(Box::new(proj), input);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name(), "out");
        assert_eq!(out[0].values(), &[Value::str("n9"), Value::Int(11)]);
    }
}
