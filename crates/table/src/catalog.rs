//! The per-node catalog of materialized tables.
//!
//! Tables are "named using unique IDs, and consequently can be shared
//! between different queries and/or dataflow elements" (§3.2). The catalog
//! owns one shared handle per declared table; dataflow elements clone the
//! handle they need.
//!
//! # Delta plumbing
//!
//! Every mutation that reaches a table through the catalog — dataflow
//! inserts and deletes, and the periodic [`Catalog::expire_all`] sweep —
//! feeds the table's [delta protocol](crate::table): a consumer that called
//! [`Catalog::subscribe_deltas`] (or `Table::subscribe_deltas` on the
//! shared handle) sees the exact `Insert`/`Delete`/`Expire`/`Evict` stream
//! instead of re-probing table state. The incremental `TableAgg` element in
//! `p2-dataflow` is the canonical consumer; expiry and eviction — which
//! previously changed state without any dataflow-visible signal — are
//! observable through the same stream.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::spec::TableSpec;
use crate::table::Table;

/// A shared, internally synchronized handle to a table.
///
/// A P2 node is single-threaded (run-to-completion), so the lock is never
/// contended in practice; it exists so that node state can be moved across
/// threads by the experiment harness (parameter sweeps run simulations in
/// parallel).
pub type TableRef = Arc<Mutex<Table>>;

/// All materialized tables of one node.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, TableRef>,
    /// The tables with a finite lifetime, in declaration order: the
    /// periodic expiry sweep only visits these (infinite-lifetime tables
    /// can never expire, so locking them per delivery is pure overhead).
    expiring: Vec<TableRef>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Declares a table (no-op if a table with this name already exists,
    /// mirroring P2's idempotent handling of repeated materialize statements
    /// when several overlays share definitions).
    pub fn declare(&mut self, spec: TableSpec) -> TableRef {
        if let Some(existing) = self.tables.get(&spec.name) {
            return existing.clone();
        }
        let expires = spec.lifetime.is_some();
        let table: TableRef = Arc::new(Mutex::new(Table::new(spec.clone())));
        self.tables.insert(spec.name, table.clone());
        if expires {
            self.expiring.push(table.clone());
        }
        table
    }

    /// Returns the table with the given name, if declared.
    pub fn get(&self, name: &str) -> Option<TableRef> {
        self.tables.get(name).cloned()
    }

    /// True if `name` is a declared (materialized) table; everything else is
    /// a transient stream.
    pub fn is_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all declared tables.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Total approximate resident bytes across all tables (footprint metric).
    pub fn resident_bytes(&self) -> usize {
        self.tables
            .values()
            .map(|t| t.lock().resident_bytes())
            .sum()
    }

    /// Expires soft state in every table; returns the number of expired rows.
    ///
    /// Uses [`Table::expire_count`], so the periodic sweep neither collects
    /// the expired tuples nor scans live rows — each table pays O(log n) for
    /// the staleness-queue peek plus O(log n) per row actually expired —
    /// and only finite-lifetime tables are visited at all. Expiry feeds the
    /// tables' delta streams, so subscribed aggregates observe it exactly.
    pub fn expire_all(&self, now: p2_value::SimTime) -> usize {
        self.expiring
            .iter()
            .map(|t| t.lock().expire_count(now))
            .sum()
    }

    /// Subscribes to the delta stream of the named table, returning the
    /// shared handle plus the subscription to drain through it. `None` if
    /// the table is not declared.
    pub fn subscribe_deltas(
        &self,
        name: &str,
    ) -> Option<(TableRef, crate::table::DeltaSubscription)> {
        let table = self.get(name)?;
        let sub = table.lock().subscribe_deltas();
        Some((table, sub))
    }

    /// Per-table operation counters, sorted by table name (storage
    /// observability: un-indexed scans, expirations, evictions).
    pub fn table_stats(&self) -> Vec<(String, crate::table::TableStats)> {
        let mut out: Vec<(String, crate::table::TableStats)> = self
            .tables
            .iter()
            .map(|(name, t)| (name.clone(), t.lock().stats()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Sum of the operation counters across all tables.
    pub fn stats_total(&self) -> crate::table::TableStats {
        let mut total = crate::table::TableStats::default();
        for t in self.tables.values() {
            total += t.lock().stats();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_value::{SimTime, TupleBuilder, Value};

    #[test]
    fn declare_and_share() {
        let mut cat = Catalog::new();
        let a = cat.declare(TableSpec::new("succ", vec![1]));
        let b = cat.declare(TableSpec::new("succ", vec![1]));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(cat.is_table("succ"));
        assert!(!cat.is_table("lookup"));
        assert_eq!(cat.names(), vec!["succ".to_string()]);
    }

    #[test]
    fn expire_all_sweeps_every_table() {
        let mut cat = Catalog::new();
        let t1 = cat.declare(TableSpec::new("a", vec![0]).with_lifetime_secs(5));
        let t2 = cat.declare(TableSpec::new("b", vec![0]).with_lifetime_secs(5));
        t1.lock()
            .insert(TupleBuilder::new("a").push(1i64).build(), SimTime::ZERO)
            .unwrap();
        t2.lock()
            .insert(TupleBuilder::new("b").push(2i64).build(), SimTime::ZERO)
            .unwrap();
        assert_eq!(cat.expire_all(SimTime::from_secs(10)), 2);
        assert!(t1.lock().is_empty() && t2.lock().is_empty());
    }

    #[test]
    fn three_subscribers_drain_the_full_stream_independently() {
        use crate::table::TableDeltaKind;

        let mut cat = Catalog::new();
        let t = cat.declare(
            TableSpec::new("succ", vec![1])
                .with_lifetime_secs(10)
                .with_max_size(4),
        );
        let (_, s1) = cat.subscribe_deltas("succ").unwrap();
        let (_, s2) = cat.subscribe_deltas("succ").unwrap();
        let (_, s3) = cat.subscribe_deltas("succ").unwrap();
        let succ = |s: i64, si: &str| {
            TupleBuilder::new("succ")
                .push("n1")
                .push(s)
                .push(si)
                .build()
        };

        // Phase 1: five inserts into a 4-row bound (one eviction), then a
        // replacement (Delete + Insert of the same key).
        for (i, s) in [1i64, 2, 3, 4, 5].iter().enumerate() {
            t.lock()
                .insert(succ(*s, "x"), SimTime::from_secs(i as u64))
                .unwrap();
        }
        t.lock()
            .insert(succ(2, "y"), SimTime::from_secs(5))
            .unwrap();

        // s1 drains mid-stream; the other queues are untouched by it.
        let mut d1 = Vec::new();
        assert!(!t.lock().drain_deltas(&s1, &mut d1));
        let phase1 = d1.len();
        assert!(phase1 > 0);

        // Phase 2: an explicit delete and an expiry sweep.
        t.lock().delete_key(&[Value::Int(3)]);
        assert!(cat.expire_all(SimTime::from_secs(100)) > 0);

        // s1 picks up only phase 2; s2 and s3 each still hold the full
        // stream, drained independently and identically.
        assert!(!t.lock().drain_deltas(&s1, &mut d1));
        let (mut d2, mut d3) = (Vec::new(), Vec::new());
        assert!(!t.lock().drain_deltas(&s2, &mut d2));
        assert!(!t.lock().drain_deltas(&s3, &mut d3));
        assert_eq!(d1, d2, "split drain concatenates to the full stream");
        assert_eq!(d2, d3, "subscribers see identical streams");
        for kind in [
            TableDeltaKind::Insert,
            TableDeltaKind::Delete,
            TableDeltaKind::Expire,
            TableDeltaKind::Evict,
        ] {
            assert!(
                d2.iter().any(|d| d.kind == kind),
                "stream is missing {kind:?}"
            );
        }
    }

    #[test]
    fn resident_bytes_sums_tables() {
        let mut cat = Catalog::new();
        let t = cat.declare(TableSpec::new("a", vec![0]));
        assert_eq!(cat.resident_bytes(), 0);
        t.lock()
            .insert(TupleBuilder::new("a").push("hello").build(), SimTime::ZERO)
            .unwrap();
        assert!(cat.resident_bytes() > 0);
    }
}
