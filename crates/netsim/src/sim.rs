//! The discrete-event simulator core.
//!
//! Everything inside the event loop runs on interned [`NodeId`]s: the slot
//! table is a dense `Vec` indexed by id, packet deliveries carry ids, and
//! per-packet latency is two array loads (sender domain, receiver domain)
//! into the topology's precomputed latency matrix. Node wakeups live in a
//! dedicated tombstone-free [`TimerIndex`](crate::timer) instead of the
//! delivery heap, so rescheduling a node's timer replaces its entry in
//! O(log n) and no superseded entries are ever popped and skipped. String
//! addresses only appear at the public API boundary and are resolved to ids
//! once per call (or once per packet, at dispatch).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use p2_value::{wire, SimTime, Tuple};

use crate::host::{Envelope, Host};
use crate::id::{AddrInterner, NodeId};
use crate::stats::NetStats;
use crate::timer::TimerIndex;
use crate::topology::Topology;

/// Simulator-wide configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// The physical layout and link parameters.
    pub topology: Topology,
    /// Independent per-packet loss probability (0.0 = lossless).
    pub loss_rate: f64,
    /// Seed for the simulator's own randomness (loss decisions).
    pub seed: u64,
}

impl NetworkConfig {
    /// The paper's Emulab-like configuration with no induced loss.
    pub fn emulab_default(seed: u64) -> NetworkConfig {
        NetworkConfig {
            topology: Topology::emulab_default(),
            loss_rate: 0.0,
            seed,
        }
    }
}

struct Slot<H> {
    host: H,
    domain: usize,
    up: bool,
    started: bool,
    link_busy_until: SimTime,
    /// Number of envelopes this node has ever handed to the network. Doubles
    /// as the per-sender emission index: loss decisions are a pure hash of
    /// `(seed, sender, emission index)`, so a sharded simulation makes the
    /// *same* decisions as this sequential one regardless of how node
    /// processing interleaves (see [`loss_roll`]).
    sends: u64,
}

/// Deterministic per-packet loss roll in `[0, 1)`.
///
/// A splitmix64-style hash of `(seed, sender, emission index)` rather than a
/// draw from one global RNG stream: the value a packet rolls depends only on
/// who sent it and how many packets that sender emitted before it, never on
/// how sends from different nodes interleave. This is what lets
/// [`ParSimulator`](crate::ParSimulator) shard nodes across worker threads
/// and still drop exactly the packets the sequential simulator drops.
pub(crate) fn loss_roll(seed: u64, src: NodeId, emission: u64) -> f64 {
    let mut x = seed
        ^ (src.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ emission.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Normalizes a user-provided seed (0 is reserved as "unset" by xorshift-era
/// callers; keep the historical substitute so fixed-seed runs stay stable).
pub(crate) fn normalize_seed(seed: u64) -> u64 {
    if seed == 0 {
        0xDEAD_BEEF
    } else {
        seed
    }
}

/// A delivery destination: resolved to an id at dispatch for every known
/// node (the hot path), kept as the raw address for destinations that do
/// not exist yet so they can be re-resolved at arrival time — a node added
/// and started while the packet is in flight still receives it, as in the
/// seed simulator.
#[derive(Debug)]
enum Dst {
    Id(NodeId),
    Unresolved(Arc<str>),
}

/// A packet in flight. Wakeups do not appear here — they live in the
/// [`TimerIndex`].
#[derive(Debug)]
struct Event {
    at: SimTime,
    seq: u64,
    dst: Dst,
    tuple: Tuple,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The discrete-event network simulator, hosting one [`Host`] per overlay
/// node.
pub struct Simulator<H: Host> {
    topology: Topology,
    loss_rate: f64,
    interner: AddrInterner,
    slots: Vec<Slot<H>>,
    events: BinaryHeap<Reverse<Event>>,
    timers: TimerIndex,
    seq: u64,
    now: SimTime,
    seed: u64,
    stats: NetStats,
    deliveries_processed: u64,
    wakeups_processed: u64,
}

impl<H: Host> Simulator<H> {
    /// Creates an empty simulator.
    pub fn new(config: NetworkConfig) -> Simulator<H> {
        let mut topology = config.topology;
        // The matrix is built by `Topology::new`, but the config's fields are
        // public; honor any direct edits made between construction and here.
        topology.rebuild_latency_matrix();
        Simulator {
            topology,
            loss_rate: config.loss_rate,
            interner: AddrInterner::new(),
            slots: Vec::new(),
            events: BinaryHeap::new(),
            timers: TimerIndex::default(),
            seq: 0,
            now: SimTime::ZERO,
            seed: normalize_seed(config.seed),
            stats: NetStats::default(),
            deliveries_processed: 0,
            wakeups_processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets the traffic counters (used to exclude warm-up traffic from
    /// measurements).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Total events processed by [`Simulator::run_until`] since construction
    /// (packet deliveries, arrival-time drops, and wakeups). This is the
    /// denominator for event-loop throughput benchmarks.
    pub fn events_processed(&self) -> u64 {
        self.deliveries_processed + self.wakeups_processed
    }

    /// Wakeup events processed since construction.
    pub fn wakeups_processed(&self) -> u64 {
        self.wakeups_processed
    }

    /// Mutable access to the topology (placement of future nodes).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The interned id of a node address, if the node was ever added.
    pub fn node_id(&self, addr: &str) -> Option<NodeId> {
        self.interner.get(addr)
    }

    /// The address behind an interned id.
    pub fn addr_of(&self, id: NodeId) -> &str {
        self.interner.addr(id)
    }

    /// Addresses of all nodes ever added, in insertion order, without
    /// cloning. Prefer this over [`Simulator::addresses`] in loops.
    pub fn addresses_iter(&self) -> impl Iterator<Item = &str> {
        self.interner.iter()
    }

    /// Addresses of all nodes ever added, in insertion order.
    pub fn addresses(&self) -> Vec<String> {
        self.addresses_iter().map(str::to_string).collect()
    }

    /// Addresses of nodes currently up, without cloning. Prefer this over
    /// [`Simulator::up_addresses`] in loops.
    pub fn up_addresses_iter(&self) -> impl Iterator<Item = &str> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.up)
            .map(|(i, _)| self.interner.addr(NodeId::from_index(i)))
    }

    /// Addresses of nodes currently up.
    pub fn up_addresses(&self) -> Vec<String> {
        self.up_addresses_iter().map(str::to_string).collect()
    }

    /// Ids of nodes currently up, in insertion order.
    pub fn up_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.up)
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Number of nodes currently up.
    pub fn up_count(&self) -> usize {
        self.slots.iter().filter(|s| s.up).count()
    }

    /// Total number of nodes ever added.
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// Shared access to a node's host.
    pub fn node(&self, addr: &str) -> Option<&H> {
        self.node_id(addr).map(|id| &self.slots[id.index()].host)
    }

    /// Mutable access to a node's host (state inspection in experiments).
    pub fn node_mut(&mut self, addr: &str) -> Option<&mut H> {
        self.node_id(addr)
            .map(|id| &mut self.slots[id.index()].host)
    }

    /// Shared access to a node's host by id.
    pub fn node_by_id(&self, id: NodeId) -> &H {
        &self.slots[id.index()].host
    }

    /// True if the node exists and is up.
    pub fn is_up(&self, addr: &str) -> bool {
        self.node_id(addr)
            .map(|id| self.slots[id.index()].up)
            .unwrap_or(false)
    }

    /// Adds a node (initially up but not started) and places it in the
    /// topology. Returns the node's interned id.
    pub fn add_node(&mut self, addr: impl Into<String>, host: H) -> NodeId {
        let addr = addr.into();
        let domain = self.topology.place(addr.clone());
        let id = self.interner.intern(&addr);
        assert_eq!(
            id.index(),
            self.slots.len(),
            "address {addr:?} was already added; use replace_node"
        );
        self.slots.push(Slot {
            host,
            domain,
            up: true,
            started: false,
            link_busy_until: SimTime::ZERO,
            sends: 0,
        });
        self.timers.grow(self.slots.len());
        id
    }

    /// Boots a node at the current virtual time.
    pub fn start_node(&mut self, addr: &str) {
        if let Some(id) = self.node_id(addr) {
            self.start_node_id(id);
        }
    }

    /// Boots a node by id at the current virtual time.
    pub fn start_node_id(&mut self, id: NodeId) {
        let now = self.now;
        let slot = &mut self.slots[id.index()];
        if !slot.up {
            return;
        }
        slot.started = true;
        let out = slot.host.start(now);
        self.dispatch(id, out);
        self.schedule_wakeup(id);
    }

    /// Boots every node that is up and not yet started, in insertion order.
    /// Batched bring-up path for large rings.
    pub fn start_all(&mut self) {
        for i in 0..self.slots.len() {
            if self.slots[i].up && !self.slots[i].started {
                self.start_node_id(NodeId::from_index(i));
            }
        }
    }

    /// Delivers an application-level tuple to a node immediately (e.g. a
    /// lookup request or a join event injected by the workload generator).
    pub fn inject(&mut self, addr: &str, tuple: Tuple) {
        if let Some(id) = self.node_id(addr) {
            self.inject_id(id, tuple);
        }
    }

    /// Delivers an application-level tuple to a node by id.
    pub fn inject_id(&mut self, id: NodeId, tuple: Tuple) {
        let now = self.now;
        let slot = &mut self.slots[id.index()];
        if !slot.up {
            return;
        }
        let out = slot.host.deliver(tuple, now);
        self.dispatch(id, out);
        self.schedule_wakeup(id);
    }

    /// Injects a batch of tuples at the current virtual time, in order.
    /// Batched bring-up / workload path for large rings: consecutive tuples
    /// for the same node are handed to the host in one
    /// [`Host::deliver_many`] call, amortizing per-tuple dispatch.
    pub fn inject_many<S: AsRef<str>>(&mut self, batch: impl IntoIterator<Item = (S, Tuple)>) {
        let mut pending: Option<(NodeId, Vec<Tuple>)> = None;
        for (addr, tuple) in batch {
            let Some(id) = self.node_id(addr.as_ref()) else {
                continue;
            };
            match &mut pending {
                Some((pid, tuples)) if *pid == id => tuples.push(tuple),
                _ => {
                    if let Some((pid, tuples)) = pending.take() {
                        self.inject_batch_id(pid, tuples);
                    }
                    pending = Some((id, vec![tuple]));
                }
            }
        }
        if let Some((pid, tuples)) = pending.take() {
            self.inject_batch_id(pid, tuples);
        }
    }

    /// Delivers a same-instant batch to one node through the host's batched
    /// entry point.
    fn inject_batch_id(&mut self, id: NodeId, tuples: Vec<Tuple>) {
        let now = self.now;
        let slot = &mut self.slots[id.index()];
        if !slot.up {
            return;
        }
        let out = match tuples.len() {
            1 => slot
                .host
                .deliver(tuples.into_iter().next().expect("len checked"), now),
            _ => slot.host.deliver_many(tuples, now),
        };
        self.dispatch(id, out);
        self.schedule_wakeup(id);
    }

    /// Marks a node as failed: its timers stop and packets addressed to it
    /// are dropped.
    pub fn take_down(&mut self, addr: &str) {
        if let Some(id) = self.node_id(addr) {
            self.slots[id.index()].up = false;
            self.timers.cancel(id);
        }
    }

    /// Replaces a failed node with a fresh host (crash-rejoin churn) and
    /// boots it at the current time. The address keeps its interned id and
    /// topology placement.
    pub fn replace_node(&mut self, addr: &str, host: H) {
        let id = match self.node_id(addr) {
            Some(id) => {
                let slot = &mut self.slots[id.index()];
                slot.host = host;
                slot.up = true;
                slot.started = false;
                slot.link_busy_until = self.now;
                self.timers.cancel(id);
                id
            }
            None => self.add_node(addr.to_string(), host),
        };
        self.start_node_id(id);
    }

    /// Runs the simulation until virtual time `until`.
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            // The next event is the lowest (time, seq) across the delivery
            // heap and the timer index; seq preserves a deterministic order
            // for events scheduled at the same microsecond.
            let next_delivery = self.events.peek().map(|Reverse(e)| (e.at, e.seq));
            let next_wakeup = self.timers.peek().map(|(at, seq, _)| (at, seq));
            let (wakeup_first, at) = match (next_delivery, next_wakeup) {
                (None, None) => break,
                (Some((da, _)), None) => (false, da),
                (None, Some((wa, _))) => (true, wa),
                (Some(d), Some(w)) => {
                    if w < d {
                        (true, w.0)
                    } else {
                        (false, d.0)
                    }
                }
            };
            if at > until {
                break;
            }
            if at > self.now {
                self.now = at;
            }
            if wakeup_first {
                let (_, id) = self.timers.pop_first().expect("peeked");
                self.wakeups_processed += 1;
                let now = self.now;
                let slot = &mut self.slots[id.index()];
                if slot.up && slot.started {
                    let out = slot.host.advance_to(now);
                    self.dispatch(id, out);
                    self.schedule_wakeup(id);
                }
            } else {
                let Reverse(event) = self.events.pop().expect("peeked");
                self.deliveries_processed += 1;
                let now = self.now;
                let id = match event.dst {
                    Dst::Id(id) => Some(id),
                    // Rare path: the destination did not exist at dispatch;
                    // it may have been added while the packet was in flight.
                    Dst::Unresolved(ref addr) => self.interner.get(addr),
                };
                match id {
                    Some(id) if self.slots[id.index()].up && self.slots[id.index()].started => {
                        self.stats.record_delivery();
                        let slot = &mut self.slots[id.index()];
                        let out = slot.host.deliver(event.tuple, now);
                        self.dispatch(id, out);
                        self.schedule_wakeup(id);
                    }
                    _ => self.stats.record_drop(),
                }
            }
        }
        self.now = until;
    }

    /// Runs the simulation for an additional duration.
    pub fn run_for(&mut self, duration: SimTime) {
        self.run_until(self.now + duration);
    }

    /// Queues envelopes produced by `src` as network transmissions. The
    /// destination address is resolved to a [`NodeId`] here, once per packet;
    /// nothing past this point touches strings.
    ///
    /// LOCKSTEP CONTRACT: the parallel simulator's `route_packet`
    /// (`parsim.rs`) re-implements this sender-side path for sharded state
    /// and must make byte-identical decisions (accounting order, loss roll,
    /// serialization and latency arithmetic, unresolved-destination
    /// fallback). Mirror any change there; the golden suite and the CI
    /// `sim_bench --par` gate enforce the equivalence.
    fn dispatch(&mut self, src: NodeId, envelopes: Vec<Envelope>) {
        for env in envelopes {
            let payload = wire::encoded_size(&env.tuple) + wire::UDP_IP_HEADER;
            self.stats
                .record_send(self.interner.addr(src), env.tuple.name(), payload);

            let emission = self.slots[src.index()].sends;
            self.slots[src.index()].sends += 1;
            if self.loss_rate > 0.0 && loss_roll(self.seed, src, emission) < self.loss_rate {
                self.stats.record_drop();
                continue;
            }

            // Serialization on the sender's access link (the link is busy
            // until the previous packet has left).
            let tx_delay = self.topology.access_tx_delay(payload);
            let slot = &mut self.slots[src.index()];
            let start = slot.link_busy_until.max(self.now);
            let departure = start + tx_delay;
            slot.link_busy_until = departure;
            let src_domain = slot.domain;

            let (dst, latency) = match self.interner.get(env.dst.as_ref()) {
                Some(dst) if dst == src => (Dst::Id(dst), SimTime::ZERO),
                Some(dst) => (
                    Dst::Id(dst),
                    self.topology
                        .domain_latency(src_domain, self.slots[dst.index()].domain),
                ),
                // Unknown destination: keep the address and re-resolve at
                // arrival (the node may be added while the packet flies).
                // Latency honors any placement already made via
                // `topology_mut`, as the seed did; unplaced falls to domain 0.
                None => {
                    let dst_domain = self.topology.domain_of(env.dst.as_ref()).unwrap_or(0);
                    (
                        Dst::Unresolved(env.dst),
                        self.topology.domain_latency(src_domain, dst_domain),
                    )
                }
            };
            let arrival = departure + latency;
            self.seq += 1;
            self.events.push(Reverse(Event {
                at: arrival,
                seq: self.seq,
                dst,
                tuple: env.tuple,
            }));
        }
    }

    /// (Re)schedules the node's wakeup to its next timer deadline, replacing
    /// any previously scheduled entry (no tombstones, no spurious wakeups).
    fn schedule_wakeup(&mut self, id: NodeId) {
        let slot = &self.slots[id.index()];
        if !slot.up || !slot.started {
            return;
        }
        match slot.host.next_deadline() {
            None => self.timers.cancel(id),
            Some(deadline) => {
                let at = deadline.max(self.now);
                if self.timers.deadline_of(id) == Some(at) {
                    return;
                }
                self.seq += 1;
                self.timers.set(id, at, self.seq);
            }
        }
    }

    /// Number of scheduled wakeup entries (at most one per node — a
    /// regression guard against tombstone accumulation).
    pub fn scheduled_wakeups(&self) -> usize {
        self.timers.len()
    }

    /// Number of packets currently in flight.
    pub fn packets_in_flight(&self) -> usize {
        self.events.len()
    }

    /// Verifies the internal indices agree (interner ⇄ slots ⇄ timer index);
    /// panics on the first inconsistency. Test support.
    pub fn check_consistency(&self) {
        assert_eq!(
            self.interner.len(),
            self.slots.len(),
            "interner and slot table disagree on node count"
        );
        self.timers.check_consistency();
        assert!(
            self.timers.len() <= self.slots.len(),
            "more timer entries than nodes"
        );
        for i in 0..self.slots.len() {
            let id = NodeId::from_index(i);
            assert_eq!(
                self.interner.get(self.interner.addr(id)),
                Some(id),
                "interner round-trip failed for {id}"
            );
            if let Some(deadline) = self.timers.deadline_of(id) {
                let slot = &self.slots[i];
                assert!(
                    slot.up && slot.started,
                    "down or unstarted node {id} has a timer entry at {deadline}"
                );
            }
        }
        for Reverse(e) in self.events.iter() {
            if let Dst::Id(id) = e.dst {
                assert!(
                    id.index() < self.slots.len(),
                    "in-flight packet addressed to dangling {id}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_value::TupleBuilder;

    /// A toy host that answers every `ping` with a `pong` back to the sender
    /// and sends one `hello` to a configured peer every 5 seconds.
    struct Toy {
        addr: String,
        peer: Option<String>,
        next_hello: Option<SimTime>,
        pongs_received: usize,
        pings_received: usize,
        spurious_wakeups: usize,
    }

    impl Toy {
        fn new(addr: &str, peer: Option<&str>) -> Toy {
            Toy {
                addr: addr.to_string(),
                peer: peer.map(str::to_string),
                next_hello: None,
                pongs_received: 0,
                pings_received: 0,
                spurious_wakeups: 0,
            }
        }
    }

    impl Host for Toy {
        fn start(&mut self, now: SimTime) -> Vec<Envelope> {
            if self.peer.is_some() {
                self.next_hello = Some(now + SimTime::from_secs(5));
            }
            Vec::new()
        }

        fn deliver(&mut self, tuple: Tuple, _now: SimTime) -> Vec<Envelope> {
            match tuple.name() {
                "ping" => {
                    self.pings_received += 1;
                    let from = tuple.field(0).to_display_string();
                    vec![Envelope::new(
                        from,
                        TupleBuilder::new("pong").push(self.addr.as_str()).build(),
                    )]
                }
                "pong" => {
                    self.pongs_received += 1;
                    Vec::new()
                }
                _ => Vec::new(),
            }
        }

        fn advance_to(&mut self, now: SimTime) -> Vec<Envelope> {
            let mut out = Vec::new();
            match self.next_hello {
                Some(t) if t <= now => {
                    if let Some(peer) = &self.peer {
                        out.push(Envelope::new(
                            peer.clone(),
                            TupleBuilder::new("ping").push(self.addr.as_str()).build(),
                        ));
                    }
                    self.next_hello = Some(t + SimTime::from_secs(5));
                }
                _ => self.spurious_wakeups += 1,
            }
            out
        }

        fn next_deadline(&self) -> Option<SimTime> {
            self.next_hello
        }
    }

    fn two_node_sim(loss: f64) -> Simulator<Toy> {
        let mut config = NetworkConfig::emulab_default(7);
        config.loss_rate = loss;
        let mut sim = Simulator::new(config);
        sim.add_node("n0", Toy::new("n0", Some("n1")));
        sim.add_node("n1", Toy::new("n1", None));
        sim.start_node("n0");
        sim.start_node("n1");
        sim
    }

    #[test]
    fn periodic_ping_pong_over_the_network() {
        let mut sim = two_node_sim(0.0);
        sim.run_until(SimTime::from_secs(26));
        // Pings at t=5,10,15,20,25 -> 5 round trips.
        assert_eq!(sim.node("n1").unwrap().pings_received, 5);
        assert_eq!(sim.node("n0").unwrap().pongs_received, 5);
        assert_eq!(sim.stats().messages_sent, 10);
        assert_eq!(sim.stats().messages_delivered, 10);
        assert!(sim.stats().bytes_sent > 0);
        assert!(sim.stats().bytes_by_name.contains_key("ping"));
        assert!(sim.events_processed() >= 10);
        sim.check_consistency();
    }

    #[test]
    fn latency_delays_delivery() {
        let mut sim = two_node_sim(0.0);
        // n0 and n1 are in different domains (round-robin), so one-way
        // latency is ~104 ms; run until just before the first ping arrives.
        sim.run_until(SimTime::from_millis(5_100));
        assert_eq!(sim.node("n1").unwrap().pings_received, 0);
        sim.run_until(SimTime::from_millis(5_200));
        assert_eq!(sim.node("n1").unwrap().pings_received, 1);
    }

    #[test]
    fn loss_drops_packets() {
        let mut sim = two_node_sim(1.0);
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(sim.node("n1").unwrap().pings_received, 0);
        assert!(sim.stats().messages_dropped > 0);
    }

    #[test]
    fn down_nodes_do_not_receive_or_tick() {
        let mut sim = two_node_sim(0.0);
        sim.run_until(SimTime::from_secs(7));
        sim.take_down("n1");
        sim.run_until(SimTime::from_secs(30));
        // Only the first ping (t=5) arrived before the failure.
        assert_eq!(sim.node("n1").unwrap().pings_received, 1);
        assert!(sim.stats().messages_dropped > 0);
        assert_eq!(sim.up_count(), 1);
        assert!(!sim.is_up("n1"));
        sim.check_consistency();

        // Rejoin with a fresh host: traffic flows again.
        sim.replace_node("n1", Toy::new("n1", None));
        sim.run_until(SimTime::from_secs(60));
        assert!(sim.node("n1").unwrap().pings_received > 0);
        assert!(sim.is_up("n1"));
        sim.check_consistency();
    }

    #[test]
    fn injection_reaches_the_target_node() {
        let mut sim = two_node_sim(0.0);
        sim.inject("n1", TupleBuilder::new("ping").push("n0").build());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.node("n1").unwrap().pings_received, 1);
        assert_eq!(sim.node("n0").unwrap().pongs_received, 1);
    }

    #[test]
    fn determinism_for_a_fixed_seed() {
        let run = || {
            let mut sim = two_node_sim(0.3);
            sim.run_until(SimTime::from_secs(100));
            (
                sim.stats().messages_delivered,
                sim.stats().messages_dropped,
                sim.stats().bytes_sent,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_spurious_wakeups_ever_fire() {
        // Toy counts advance_to calls with nothing due. The tombstone-free
        // timer index must never produce one, even across churn.
        let mut sim = two_node_sim(0.0);
        sim.run_until(SimTime::from_secs(40));
        sim.take_down("n0");
        sim.replace_node("n0", Toy::new("n0", Some("n1")));
        sim.run_until(SimTime::from_secs(120));
        for addr in ["n0", "n1"] {
            assert_eq!(
                sim.node(addr).unwrap().spurious_wakeups,
                0,
                "{addr} saw a spurious wakeup"
            );
        }
        // At most one scheduled wakeup per node, no tombstones.
        assert!(sim.scheduled_wakeups() <= sim.node_count());
        sim.check_consistency();
    }

    #[test]
    fn rescheduling_earlier_cancels_the_superseded_wakeup() {
        // n0's periodic hello is at t=5; delivering a ping to n0 makes the
        // simulator re-examine its deadline. The timer index must keep
        // exactly one entry for n0 throughout.
        let mut sim = two_node_sim(0.0);
        sim.inject("n0", TupleBuilder::new("pong").push("n1").build());
        assert!(sim.scheduled_wakeups() <= 2);
        sim.run_until(SimTime::from_secs(26));
        assert_eq!(sim.node("n1").unwrap().pings_received, 5);
        assert_eq!(sim.node("n0").unwrap().spurious_wakeups, 0);
        assert_eq!(sim.node("n1").unwrap().spurious_wakeups, 0);
    }

    #[test]
    fn batched_bring_up_matches_manual_bring_up() {
        let build = |batched: bool| {
            let mut sim: Simulator<Toy> = Simulator::new(NetworkConfig::emulab_default(7));
            sim.add_node("n0", Toy::new("n0", Some("n1")));
            sim.add_node("n1", Toy::new("n1", None));
            if batched {
                sim.start_all();
                sim.inject_many([("n1", TupleBuilder::new("ping").push("n0").build())]);
            } else {
                sim.start_node("n0");
                sim.start_node("n1");
                sim.inject("n1", TupleBuilder::new("ping").push("n0").build());
            }
            sim.run_until(SimTime::from_secs(26));
            (
                sim.stats().messages_sent,
                sim.stats().messages_delivered,
                sim.stats().bytes_sent,
            )
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn packet_to_a_node_added_mid_flight_is_delivered() {
        // n0 pings "n2" before n2 exists; n2 is added and started while the
        // packet is in flight and must still receive it (destinations are
        // re-resolved at arrival time).
        let mut sim = two_node_sim(0.0);
        sim.inject("n0", TupleBuilder::new("ping").push("n2").build());
        // The pong to "n2" is now in flight (unplaced destinations get
        // domain-0 latency: ~4 ms away).
        sim.run_for(SimTime::from_millis(2));
        sim.add_node("n2", Toy::new("n2", None));
        sim.start_node("n2");
        sim.run_for(SimTime::from_secs(1));
        assert_eq!(sim.node("n2").unwrap().pongs_received, 1);
        sim.check_consistency();

        // A packet to an address that never materializes is dropped at
        // arrival, not lost silently at dispatch.
        let drops_before = sim.stats().messages_dropped;
        sim.inject("n0", TupleBuilder::new("ping").push("ghost").build());
        sim.run_for(SimTime::from_secs(1));
        assert_eq!(sim.stats().messages_dropped, drops_before + 1);
    }

    #[test]
    fn ids_are_stable_across_replacement() {
        let mut sim = two_node_sim(0.0);
        let id = sim.node_id("n1").unwrap();
        sim.take_down("n1");
        sim.replace_node("n1", Toy::new("n1", None));
        assert_eq!(sim.node_id("n1"), Some(id));
        assert_eq!(sim.addr_of(id), "n1");
        assert_eq!(sim.node_by_id(id).addr, "n1");
        assert_eq!(sim.up_ids().count(), 2);
        assert_eq!(
            sim.up_addresses_iter().collect::<Vec<_>>(),
            vec!["n0", "n1"]
        );
        assert_eq!(sim.addresses_iter().count(), 2);
    }
}
