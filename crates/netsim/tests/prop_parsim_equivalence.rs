//! Property tests for the parallel sharded simulator: for random
//! topologies, loss rates, and churn schedules, `ParSimulator` with one
//! worker must be event-for-event identical to the sequential `Simulator`
//! (same deliveries, drops, wakeups, bytes, and per-node state), and runs
//! with more workers must produce identical `NetStats` and final node
//! state — the determinism contract of `p2_netsim::parsim`.

use p2_netsim::{Envelope, Host, NetworkConfig, ParSimulator, Simulator, Topology};
use p2_value::{SimTime, Tuple, TupleBuilder};
use proptest::prelude::*;

/// A periodic host: sends one `ping` to its peer every period, counts
/// deliveries and spurious wakeups.
struct Periodic {
    addr: String,
    peer: String,
    period: SimTime,
    next: Option<SimTime>,
    spurious_wakeups: usize,
    delivered: usize,
}

impl Periodic {
    fn new(addr: String, peer: String, period_ms: u64) -> Periodic {
        Periodic {
            addr,
            peer,
            period: SimTime::from_millis(period_ms),
            next: None,
            spurious_wakeups: 0,
            delivered: 0,
        }
    }
}

impl Host for Periodic {
    fn start(&mut self, now: SimTime) -> Vec<Envelope> {
        self.next = Some(now + self.period);
        Vec::new()
    }

    fn deliver(&mut self, _tuple: Tuple, _now: SimTime) -> Vec<Envelope> {
        self.delivered += 1;
        Vec::new()
    }

    fn advance_to(&mut self, now: SimTime) -> Vec<Envelope> {
        match self.next {
            Some(t) if t <= now => {
                self.next = Some(t + self.period);
                vec![Envelope::new(
                    self.peer.clone(),
                    TupleBuilder::new("ping").push(self.addr.as_str()).build(),
                )]
            }
            _ => {
                self.spurious_wakeups += 1;
                Vec::new()
            }
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.next
    }
}

#[derive(Debug, Clone)]
enum Action {
    /// Advance virtual time by this many milliseconds.
    Run(u64),
    /// Inject a ping into node `i` (mod population).
    Inject(usize),
    /// Crash node `i`.
    TakeDown(usize),
    /// Crash-rejoin node `i` with a fresh host.
    Replace(usize),
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u64..30_000).prop_map(Action::Run),
        (0usize..16).prop_map(Action::Inject),
        (0usize..16).prop_map(Action::TakeDown),
        (0usize..16).prop_map(Action::Replace),
    ]
}

/// Random topology with a strictly positive minimum latency, as the
/// conservative window protocol requires.
#[derive(Debug, Clone)]
struct TopoSpec {
    domains: usize,
    intra_ms: u64,
    inter_ms: u64,
    loss: f64,
    seed: u64,
}

fn arb_topo() -> impl Strategy<Value = TopoSpec> {
    ((1usize..6, 1u64..40, 1u64..200), (0usize..3, 1u64..1000)).prop_map(
        |((domains, intra_ms, inter_ms), (loss_idx, seed))| TopoSpec {
            domains,
            intra_ms,
            inter_ms,
            loss: [0.0, 0.2, 0.6][loss_idx],
            seed,
        },
    )
}

fn addr(i: usize) -> String {
    format!("n{i}")
}

fn host(i: usize, n: usize) -> Periodic {
    Periodic::new(addr(i), addr((i + 1) % n), 1000 + 137 * i as u64)
}

fn config(spec: &TopoSpec) -> NetworkConfig {
    NetworkConfig {
        topology: Topology::new(
            spec.domains,
            SimTime::from_millis(spec.intra_ms),
            SimTime::from_millis(spec.inter_ms),
            10e6,
            100e6,
        ),
        loss_rate: spec.loss,
        seed: spec.seed,
    }
}

/// Everything observable about a finished run: traffic counters, event
/// counters, and per-node final state.
#[derive(Debug, PartialEq)]
struct Snapshot {
    messages_sent: u64,
    messages_delivered: u64,
    messages_dropped: u64,
    bytes_sent: u64,
    events_processed: u64,
    wakeups_processed: u64,
    now_micros: u64,
    per_node: Vec<(usize, usize, Option<SimTime>, bool)>,
}

trait Driver {
    fn run_for(&mut self, d: SimTime);
    fn inject(&mut self, addr: &str, tuple: Tuple);
    fn take_down(&mut self, addr: &str);
    fn replace(&mut self, addr: &str, host: Periodic);
    fn snapshot(&self, n: usize) -> Snapshot;
    fn verify(&self);
}

impl Driver for Simulator<Periodic> {
    fn run_for(&mut self, d: SimTime) {
        Simulator::run_for(self, d);
    }
    fn inject(&mut self, addr: &str, tuple: Tuple) {
        Simulator::inject(self, addr, tuple);
    }
    fn take_down(&mut self, addr: &str) {
        Simulator::take_down(self, addr);
    }
    fn replace(&mut self, addr: &str, host: Periodic) {
        Simulator::replace_node(self, addr, host);
    }
    fn snapshot(&self, n: usize) -> Snapshot {
        let s = self.stats();
        Snapshot {
            messages_sent: s.messages_sent,
            messages_delivered: s.messages_delivered,
            messages_dropped: s.messages_dropped,
            bytes_sent: s.bytes_sent,
            events_processed: self.events_processed(),
            wakeups_processed: self.wakeups_processed(),
            now_micros: self.now().as_micros(),
            per_node: (0..n)
                .map(|i| {
                    let h = self.node(&addr(i)).expect("node exists");
                    (
                        h.delivered,
                        h.spurious_wakeups,
                        h.next_deadline(),
                        self.is_up(&addr(i)),
                    )
                })
                .collect(),
        }
    }
    fn verify(&self) {
        self.check_consistency();
    }
}

impl Driver for ParSimulator<Periodic> {
    fn run_for(&mut self, d: SimTime) {
        ParSimulator::run_for(self, d);
    }
    fn inject(&mut self, addr: &str, tuple: Tuple) {
        ParSimulator::inject(self, addr, tuple);
    }
    fn take_down(&mut self, addr: &str) {
        ParSimulator::take_down(self, addr);
    }
    fn replace(&mut self, addr: &str, host: Periodic) {
        ParSimulator::replace_node(self, addr, host);
    }
    fn snapshot(&self, n: usize) -> Snapshot {
        let s = self.stats();
        Snapshot {
            messages_sent: s.messages_sent,
            messages_delivered: s.messages_delivered,
            messages_dropped: s.messages_dropped,
            bytes_sent: s.bytes_sent,
            events_processed: self.events_processed(),
            wakeups_processed: self.wakeups_processed(),
            now_micros: self.now().as_micros(),
            per_node: (0..n)
                .map(|i| {
                    let h = self.node(&addr(i)).expect("node exists");
                    (
                        h.delivered,
                        h.spurious_wakeups,
                        h.next_deadline(),
                        self.is_up(&addr(i)),
                    )
                })
                .collect(),
        }
    }
    fn verify(&self) {
        self.check_consistency();
    }
}

fn drive(sim: &mut dyn Driver, n: usize, actions: &[Action]) {
    for action in actions {
        match action {
            Action::Run(ms) => sim.run_for(SimTime::from_millis(*ms)),
            Action::Inject(i) => {
                let a = addr(i % n);
                sim.inject(&a, TupleBuilder::new("ping").push(a.as_str()).build());
            }
            Action::TakeDown(i) => sim.take_down(&addr(i % n)),
            Action::Replace(i) => sim.replace(&addr(i % n), host(i % n, n)),
        }
    }
    sim.run_for(SimTime::from_secs(30));
    sim.verify();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_runs_match_the_sequential_simulator(
        spec in arb_topo(),
        n in 2usize..12,
        actions in proptest::collection::vec(arb_action(), 1..40),
    ) {
        // Golden: the sequential simulator.
        let mut seq: Simulator<Periodic> = Simulator::new(config(&spec));
        for i in 0..n {
            seq.add_node(addr(i), host(i, n));
        }
        seq.start_all();
        drive(&mut seq, n, &actions);
        let golden = seq.snapshot(n);

        // One worker must be event-for-event identical; more workers must
        // reproduce the same NetStats and final node state.
        for workers in [1usize, 2, 3, 7] {
            let mut par: ParSimulator<Periodic> = ParSimulator::new(config(&spec), workers);
            for i in 0..n {
                par.add_node(addr(i), host(i, n));
            }
            par.start_all();
            drive(&mut par, n, &actions);
            let got = par.snapshot(n);
            prop_assert_eq!(
                &got, &golden,
                "{}-worker run diverged (loss {}, domains {})",
                workers, spec.loss, spec.domains
            );
        }
    }
}
