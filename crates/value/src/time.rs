//! Simulated wall-clock time.
//!
//! The original P2 runs on real machines and `f_now()` returns the node's
//! wall-clock time. In this reproduction every node is driven by a
//! discrete-event simulator with a virtual clock; [`SimTime`] is that clock's
//! unit (microseconds since the start of the simulation). OverLog programs
//! only ever *compare* or *subtract* timestamps ("has this neighbour been
//! silent for 20 seconds?"), so an epoch of "simulation start" is
//! behaviourally equivalent to the Unix epoch.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a time from fractional seconds (saturating at zero for
    /// negative inputs).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime(0)
        } else {
            SimTime((s * 1e6).round() as u64)
        }
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a double.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction, returning the difference as a duration.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(42).as_micros(), 42);
        assert!((SimTime::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(4);
        assert_eq!((a + b).as_micros(), 14_000_000);
        assert_eq!((a - b).as_micros(), 6_000_000);
        // Subtraction saturates rather than panicking: the simulator never
        // needs negative times.
        assert_eq!((b - a).as_micros(), 0);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_secs(14));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
