//! Vendored stand-in for `serde_json`: pretty-prints the [`serde::Json`]
//! tree produced by the workspace's serde stub.

use std::fmt;

use serde::{Json, Serialize};

/// Serialization error (the stub's rendering is infallible; this exists for
/// signature compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), 0, &mut out);
    Ok(out)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value).map(|s| {
        // Compact by re-rendering without the pretty writer's whitespace is
        // overkill for a stub; strip newline + indent runs instead.
        let mut compact = String::with_capacity(s.len());
        let mut in_string = false;
        let mut escaped = false;
        let mut chars = s.chars().peekable();
        while let Some(c) = chars.next() {
            if in_string {
                compact.push(c);
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => {
                    in_string = true;
                    compact.push(c);
                }
                '\n' => {
                    while chars.peek() == Some(&' ') {
                        chars.next();
                    }
                }
                _ => compact.push(c),
            }
        }
        compact
    })
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `{}` prints 3.0 as "3"; that is still valid JSON, keep it.
    } else {
        // JSON has no NaN/inf; emit null like serde_json does for invalid
        // floats only under its arbitrary-precision mode — null is the
        // safest portable choice.
        out.push_str("null");
    }
}

fn write_json(v: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Float(f) => write_float(*f, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_json(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(": ");
                write_json(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_objects() {
        let v = Json::Object(vec![
            ("x".into(), Json::UInt(3)),
            ("y".into(), Json::Array(vec![Json::Float(1.5), Json::Null])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"x\": 3"));
        assert!(s.contains("1.5"));
    }

    #[test]
    fn compact_strips_whitespace_outside_strings() {
        let v = Json::Object(vec![("a b".into(), Json::Str("c  d".into()))]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "{\"a b\": \"c  d\"}");
    }

    #[test]
    fn escapes_control_characters() {
        let s = to_string_pretty(&Json::Str("a\"b\\c\nd".into())).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
