//! Histograms, CDFs and summary statistics used by the experiments.

use serde::Serialize;

/// Cluster-wide table-storage operation counters (summed over nodes).
///
/// `full_scans` exposes lookups that could not use an index — the planner
/// auto-declares secondary indices for every equijoin probe over non-key
/// columns, so a non-zero value here flags a probe path that regressed to
/// O(n).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StorageOps {
    /// Lookups served by primary-key indices.
    pub primary_lookups: u64,
    /// Lookups served by secondary indices.
    pub indexed_lookups: u64,
    /// Lookups that fell back to full-table scans.
    pub full_scans: u64,
    /// Rows removed by soft-state expiry.
    pub expired: u64,
    /// Rows evicted by table size bounds.
    pub evicted: u64,
    /// Delta-subscription queues that overflowed `DELTA_LOG_CAP` (each one
    /// forces the subscriber into a from-scratch rebuild).
    pub overflows: u64,
    /// From-scratch rebuilds reported by incremental delta consumers.
    pub rebuilds: u64,
}

impl StorageOps {
    /// Fraction of lookups that used an index (1.0 when no lookups ran).
    pub fn indexed_fraction(&self) -> f64 {
        let indexed = self.primary_lookups + self.indexed_lookups;
        let total = indexed + self.full_scans;
        if total == 0 {
            return 1.0;
        }
        indexed as f64 / total as f64
    }
}

impl From<p2_table::TableStats> for StorageOps {
    fn from(s: p2_table::TableStats) -> StorageOps {
        StorageOps {
            primary_lookups: s.primary_lookups,
            indexed_lookups: s.indexed_lookups,
            full_scans: s.full_scans,
            expired: s.expired,
            evicted: s.evicted,
            overflows: s.overflows,
            rebuilds: s.rebuilds,
        }
    }
}

/// Cluster-wide engine ingress counters (summed over nodes), the dataflow
/// analogue of [`StorageOps`]: how many tuples entered each node's graph from
/// the outside and how many arrived with no matching entry port. A non-zero
/// `dropped_no_entry` flags traffic for tuple names the plan never declared.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct EngineOps {
    /// Tuples pushed into element input ports.
    pub handoffs: u64,
    /// Tuples injected from outside (network arrivals, application events).
    pub injected: u64,
    /// Tuples dropped because no entry port matched their name.
    pub dropped_no_entry: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Tuples handed to the network.
    pub sent: u64,
    /// Refresh pokes dropped by the planner's static suppression masks
    /// (delta-driven scheduling; the strand never ran).
    pub suppressed_refresh_pokes: u64,
    /// Pending pokes dropped by the dynamic `would_wake` guard at drain
    /// time (the strand proved the invocation a no-op without running it).
    pub suppressed_guard_pokes: u64,
}

impl EngineOps {
    /// Accumulates one node's [`p2_dataflow::EngineStats`] into the sum.
    pub fn absorb(&mut self, s: p2_dataflow::EngineStats) {
        self.handoffs += s.handoffs;
        self.injected += s.injected;
        self.dropped_no_entry += s.dropped_no_entry;
        self.timers_fired += s.timers_fired;
        self.sent += s.sent;
        self.suppressed_refresh_pokes += s.suppressed_refresh_pokes;
        self.suppressed_guard_pokes += s.suppressed_guard_pokes;
    }
}

/// Simulator event-loop counters (the event-core analogue of
/// [`StorageOps`]): how many events the loop has processed and what its
/// pending-work structures currently hold. `scheduled_wakeups` can never
/// exceed the node count — the timer index keeps at most one live entry per
/// node, so a larger value would flag tombstone accumulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SimOps {
    /// Total events processed (deliveries, arrival-time drops, wakeups).
    pub events_processed: u64,
    /// Wakeup events processed.
    pub wakeups_processed: u64,
    /// Packets currently in flight.
    pub packets_in_flight: usize,
    /// Live wakeup entries in the timer index (≤ node count).
    pub scheduled_wakeups: usize,
}

/// A discrete histogram over small non-negative integers (e.g. hop counts).
#[derive(Debug, Clone, Default, Serialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Adds one observation of `value`.
    pub fn add(&mut self, value: usize) {
        if self.counts.len() <= value {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Relative frequency of each value (index = value), as plotted in
    /// Figure 3(i).
    pub fn frequencies(&self) -> Vec<(usize, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .enumerate()
            .map(|(v, c)| (v, *c as f64 / self.total as f64))
            .collect()
    }

    /// Mean of the observations.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Raw counts (index = value).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// An empirical CDF over floating-point samples (latencies, consistency
/// fractions).
///
/// The sorted order is computed once on first use and cached; `add`
/// invalidates the cache. This keeps repeated `quantile`/`points` calls at
/// report time from re-cloning and re-sorting the sample vector each call.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: Vec<f64>,
    dirty: bool,
}

impl Serialize for Cdf {
    fn to_json(&self) -> serde::Json {
        // Only the raw samples are data; the sort cache is derived state.
        serde::Json::Object(vec![("samples".to_string(), self.samples.to_json())])
    }
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Cdf {
        Cdf::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: f64) {
        self.samples.push(sample);
        self.dirty = true;
    }

    fn sorted(&mut self) -> &[f64] {
        if self.dirty || self.sorted.len() != self.samples.len() {
            self.sorted.clear();
            self.sorted.extend_from_slice(&self.samples);
            self.sorted.sort_by(f64::total_cmp);
            self.dirty = false;
        }
        &self.sorted
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The fraction of samples at or below `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let below = self.samples.iter().filter(|s| **s <= x).count();
        below as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the samples.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sorted = self.sorted();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// `(value, cumulative fraction)` points suitable for plotting.
    pub fn points(&mut self) -> Vec<(f64, f64)> {
        let sorted = self.sorted();
        let n = sorted.len();
        sorted
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, (i + 1) as f64 / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_frequencies_and_mean() {
        let mut h = Histogram::new();
        for v in [1usize, 2, 2, 3, 3, 3] {
            h.add(v);
        }
        assert_eq!(h.total(), 6);
        let freqs = h.frequencies();
        assert_eq!(freqs[2], (2, 2.0 / 6.0));
        assert!((h.mean() - 14.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.counts()[3], 3);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert!(h.frequencies().is_empty());
    }

    #[test]
    fn cdf_quantiles_and_fractions() {
        let mut c = Cdf::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            c.add(v);
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.fraction_at_or_below(3.0), 0.6);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 5.0);
        assert_eq!(c.quantile(0.5), 3.0);
        assert_eq!(c.mean(), 3.0);
        let pts = c.points();
        assert_eq!(pts.first().unwrap().1, 0.2);
        assert_eq!(pts.last().unwrap(), &(5.0, 1.0));
    }

    #[test]
    fn storage_ops_indexed_fraction() {
        let mut ops = StorageOps::default();
        assert_eq!(ops.indexed_fraction(), 1.0);
        ops.primary_lookups = 6;
        ops.indexed_lookups = 2;
        ops.full_scans = 2;
        assert!((ops.indexed_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_is_safe() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(1.0), 0.0);
    }

    #[test]
    fn cdf_sort_cache_invalidated_by_add() {
        let mut c = Cdf::new();
        c.add(5.0);
        c.add(1.0);
        assert_eq!(c.quantile(0.0), 1.0);
        // A sample below the current minimum must be visible after the
        // cached sort has already been built.
        c.add(0.5);
        assert_eq!(c.quantile(0.0), 0.5);
        assert_eq!(c.points().first().unwrap().0, 0.5);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn engine_ops_absorb_sums() {
        let mut ops = EngineOps::default();
        ops.absorb(p2_dataflow::EngineStats {
            injected: 3,
            dropped_no_entry: 1,
            ..Default::default()
        });
        ops.absorb(p2_dataflow::EngineStats {
            injected: 2,
            sent: 4,
            ..Default::default()
        });
        assert_eq!(
            ops,
            EngineOps {
                injected: 5,
                dropped_no_entry: 1,
                sent: 4,
                ..Default::default()
            }
        );
    }
}
