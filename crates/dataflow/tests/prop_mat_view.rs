//! Property test pinning `MatView`'s provenance counts to a from-scratch
//! reference join.
//!
//! The view under test materializes the two-table join
//! `out(S, D, Tag) :- link(S, D, W), node(D, Tag)` — one delta-fed input
//! per trigger table, duplicate derivations possible because the head
//! projects `W` away. Under arbitrary interleavings of insert / delete /
//! expire / evict on *both* tables (including batches that dirty both
//! inputs between pokes, which must fall back to a rebuild rather than
//! double-count), at every poke:
//!
//! * the view's `(head values, provenance count)` set must equal the join
//!   recomputed from scratch over the tables' current contents, and
//! * every head tuple that stopped being derivable since the previous poke
//!   must have been emitted on the retraction port.

use p2_dataflow::elements::{Collector, Delete, Demux, FusedStrand, Insert, MatView, ViewInput};
use p2_dataflow::{Engine, Graph, Route};
use p2_pel::{Expr, Program};
use p2_table::{Table, TableRef, TableSpec};
use p2_value::{SimTime, Tuple, TupleBuilder, Value};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Action {
    /// Insert `link(s, d, w)` (pokes the view's link input).
    InsertLink {
        s: i64,
        d: i64,
        w: i64,
        at_secs: u64,
    },
    /// Insert `node(d, tag)`; same `d` replaces (Delete + Insert deltas).
    InsertNode { d: i64, tag: i64, at_secs: u64 },
    /// Delete every link into `d` (pattern delete, possibly multi-row).
    DeleteLink { d: i64 },
    /// Delete the node row for `d`.
    DeleteNode { d: i64 },
    /// Expire soft state on both tables (observable only through deltas).
    Expire { at_secs: u64 },
    /// Sync the view without mutating anything and compare against the
    /// reference. Mutations between pokes accumulate into one drain batch.
    Poke,
}

fn arb_action() -> impl Strategy<Value = Action> {
    // The vendored proptest has no weighted arms; duplication stands in
    // for weights (inserts and pokes dominate).
    let insert_link =
        || {
            (0i64..3, 0i64..3, 0i64..3, 0u64..200)
                .prop_map(|(s, d, w, at_secs)| Action::InsertLink { s, d, w, at_secs })
        };
    let insert_node = || {
        (0i64..3, 0i64..3, 0u64..200).prop_map(|(d, tag, at_secs)| Action::InsertNode {
            d,
            tag,
            at_secs,
        })
    };
    prop_oneof![
        insert_link(),
        insert_link(),
        insert_link(),
        insert_node(),
        insert_node(),
        insert_node(),
        (0i64..3).prop_map(|d| Action::DeleteLink { d }),
        (0i64..3).prop_map(|d| Action::DeleteNode { d }),
        (0u64..260).prop_map(|at_secs| Action::Expire { at_secs }),
        Just(Action::Poke),
        Just(Action::Poke),
        Just(Action::Poke),
        Just(Action::Poke),
    ]
}

fn field(i: usize) -> Program {
    Program::compile(&Expr::Field(i))
}

struct Rig {
    engine: Engine,
    link: TableRef,
    node: TableRef,
    retracts: p2_dataflow::elements::CollectorHandle,
    view_id: usize,
}

fn build_rig(link_cap: usize) -> Rig {
    let link: TableRef = {
        let mut t = Table::new(
            TableSpec::new("link", vec![0, 1, 2])
                .with_lifetime_secs(50)
                .with_max_size(link_cap),
        );
        t.add_index(vec![1]);
        Arc::new(parking_lot::Mutex::new(t))
    };
    let node: TableRef = Arc::new(parking_lot::Mutex::new(Table::new(
        TableSpec::new("node", vec![0]).with_lifetime_secs(80),
    )));

    let mut g = Graph::new();
    let demux = g.add(
        "demux",
        Box::new(Demux::new(vec![
            "link".into(),
            "node".into(),
            "unlink".into(),
            "unnode".into(),
            "poke".into(),
        ])),
    );
    let ins_link = g.add("ins_link", Box::new(Insert::new(link.clone())));
    let ins_node = g.add("ins_node", Box::new(Insert::new(node.clone())));
    let del_link = g.add("del_link", Box::new(Delete::new(link.clone())));
    let del_node = g.add("del_node", Box::new(Delete::new(node.clone())));
    let link_sub = link.lock().subscribe_deltas();
    let node_sub = node.lock().subscribe_deltas();
    let view = MatView::new(
        vec![
            // Trigger link(S, D, W): probe node on D, head (S, D, Tag).
            ViewInput {
                table: link.clone(),
                sub: link_sub,
                pre_filters: vec![],
                ops: vec![FusedStrand::probe_op(node.clone(), vec![(1, 0)])],
                head_fields: vec![field(0), field(1), field(4)],
            },
            // Trigger node(D, Tag): probe link on D, head (S, D, Tag).
            ViewInput {
                table: node.clone(),
                sub: node_sub,
                pre_filters: vec![],
                ops: vec![FusedStrand::probe_op(link.clone(), vec![(0, 1)])],
                head_fields: vec![field(2), field(0), field(1)],
            },
        ],
        "out",
    );
    let view_id = g.add("view", Box::new(view));
    let (c, live) = Collector::new();
    let live_id = g.add("live", Box::new(c));
    drop(live);
    let (c, retracts) = Collector::new();
    let retract_id = g.add("retracts", Box::new(c));
    g.connect(demux, 0, ins_link, 0);
    g.connect(demux, 1, ins_node, 0);
    g.connect(demux, 2, del_link, 0);
    g.connect(demux, 3, del_node, 0);
    g.connect(ins_link, 0, view_id, 0);
    g.connect(ins_node, 0, view_id, 1);
    // Deletes and explicit pokes sync the view without a live derivation
    // (input port `inputs.len()` is past the trigger ports).
    g.connect(del_link, 0, view_id, 2);
    g.connect(del_node, 0, view_id, 2);
    g.connect(demux, 4, view_id, 2);
    g.connect(view_id, 0, live_id, 0);
    g.connect(view_id, 1, live_id, 0);
    g.connect(view_id, 2, retract_id, 0);
    let mut engine = Engine::new(g, "n1", 1);
    engine.set_entry(Route {
        element: demux,
        port: 0,
    });
    engine.start(SimTime::ZERO);
    Rig {
        engine,
        link,
        node,
        retracts,
        view_id,
    }
}

fn view_contents(engine: &mut Engine, id: usize) -> Vec<(Vec<Value>, usize)> {
    engine
        .with_element(id, |e| {
            e.as_any_mut()
                .and_then(|a| a.downcast_mut::<MatView>())
                .map(|v| v.contents())
        })
        .flatten()
        .expect("the view element must downcast")
}

/// The reference: recompute the join from the tables' current contents.
fn reference_join(link: &TableRef, node: &TableRef) -> Vec<(Vec<Value>, usize)> {
    let link = link.lock();
    let node = node.lock();
    let mut counts: HashMap<Vec<Value>, usize> = HashMap::new();
    for l in link.scan_iter() {
        for n in node.scan_iter() {
            if l.field(1) == n.field(0) {
                let head = vec![l.field(0).clone(), l.field(1).clone(), n.field(1).clone()];
                *counts.entry(head).or_insert(0) += 1;
            }
        }
    }
    let mut out: Vec<(Vec<Value>, usize)> = counts.into_iter().collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn mat_view_counts_match_recomputed_join(
        actions in proptest::collection::vec(arb_action(), 1..80),
        link_cap in 3usize..9,
    ) {
        let mut rig = build_rig(link_cap);
        let mut now = SimTime::ZERO;
        let mut prev: HashSet<Vec<Value>> =
            reference_join(&rig.link, &rig.node).into_iter().map(|(k, _)| k).collect();
        let mut seen_retracts = 0usize;
        for action in actions {
            match action {
                Action::InsertLink { s, d, w, at_secs } => {
                    now = now.max(SimTime::from_secs(at_secs));
                    let t = TupleBuilder::new("link").push(s).push(d).push(w).build();
                    rig.engine.deliver(t, now);
                }
                Action::InsertNode { d, tag, at_secs } => {
                    now = now.max(SimTime::from_secs(at_secs));
                    let t = TupleBuilder::new("node").push(d).push(tag).build();
                    rig.engine.deliver(t, now);
                }
                Action::DeleteLink { d } => {
                    let pattern = Tuple::new(
                        "unlink",
                        vec![Value::Null, Value::Int(d), Value::Null],
                    );
                    rig.engine.deliver(pattern, now);
                }
                Action::DeleteNode { d } => {
                    let pattern = Tuple::new("unnode", vec![Value::Int(d), Value::Null]);
                    rig.engine.deliver(pattern, now);
                }
                Action::Expire { at_secs } => {
                    now = now.max(SimTime::from_secs(at_secs));
                    rig.link.lock().expire(now);
                    rig.node.lock().expire(now);
                }
                Action::Poke => {
                    check(&mut rig, &mut prev, &mut seen_retracts, now);
                }
            }
            rig.link.lock().check_consistency().unwrap();
            rig.node.lock().check_consistency().unwrap();
        }
        // Final poke so trailing mutations are always verified.
        check(&mut rig, &mut prev, &mut seen_retracts, now);
    }
}

/// Pokes the view, then asserts (panicking, which proptest catches and
/// shrinks) that the counts match the reference join and that every row
/// that stopped being derivable since the last check was retracted.
fn check(rig: &mut Rig, prev: &mut HashSet<Vec<Value>>, seen_retracts: &mut usize, now: SimTime) {
    rig.engine.deliver(Tuple::new("poke", vec![]), now);
    let expected = reference_join(&rig.link, &rig.node);
    let got = view_contents(&mut rig.engine, rig.view_id);
    assert_eq!(got, expected, "count divergence at {now:?}");
    let live: HashSet<Vec<Value>> = expected.into_iter().map(|(k, _)| k).collect();
    let fresh_retracts: Vec<Vec<Value>> = {
        let guard = rig.retracts.lock();
        guard[*seen_retracts..]
            .iter()
            .map(|(_, t)| t.values().to_vec())
            .collect()
    };
    *seen_retracts += fresh_retracts.len();
    for gone in prev.difference(&live) {
        assert!(
            fresh_retracts.contains(gone),
            "vanished row {gone:?} was not retracted at {now:?}"
        );
    }
    *prev = live;
}
