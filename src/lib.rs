//! Umbrella crate for the P2 "Implementing Declarative Overlays" reproduction.
//!
//! This crate exists to host the workspace-level runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`); the library
//! functionality lives in the `crates/` members:
//!
//! * `p2-value`, `p2-pel`, `p2-table`, `p2-dataflow` — the runtime substrate;
//! * `p2-overlog`, `p2-core` — the OverLog language and planner (the paper's
//!   contribution);
//! * `p2-netsim`, `p2-overlays`, `p2-baseline`, `p2-harness`, `p2-bench` —
//!   the simulated testbed, shipped overlay specifications, the hand-coded
//!   comparison baseline, and the evaluation harness.
//!
//! See README.md for a tour and DESIGN.md for the system inventory.

/// Re-export of the most commonly used entry points, so examples and tests
/// can be read without chasing crate boundaries.
pub mod prelude {
    pub use p2_core::{NodeConfig, P2Node};
    pub use p2_harness::{BaselineCluster, ChordCluster, ChordClusterBuilder};
    pub use p2_netsim::{AnySimulator, NetworkConfig, ParSimulator, Simulator};
    pub use p2_overlays::{chord, gossip, monitor, narada, P2Host};
    pub use p2_overlog::compile_checked;
    pub use p2_value::{SimTime, Tuple, TupleBuilder, Uint160, Value};
}
