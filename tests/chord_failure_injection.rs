//! Failure-injection tests for the declarative Chord overlay: node crashes,
//! lossy links, and landmark failure after bootstrap.

use p2_suite::prelude::*;

#[test]
fn ring_heals_after_a_node_crash() {
    let n = 8;
    let mut cluster = ChordCluster::build(n, 180, 77);
    assert!(cluster.ring_correctness() > 0.99);

    // Crash one non-landmark node and give the overlay time to heal.
    // Successor soft state expires within 10 s and stabilization repairs the
    // ring within a few 15 s rounds, but finger entries pointing at the dead
    // node live for up to 180 s (the specification's finger lifetime) and
    // lookups routed through them are lost in the meantime — the paper makes
    // the same observation about P2 Chord under churn. We therefore measure
    // after the stale-finger window has passed.
    let victim = cluster.addrs()[3].clone();
    cluster.crash(&victim);
    cluster.run_for(420.0);

    // The ring itself heals completely: every survivor's best successor is
    // again its correct ring successor and nobody points at the victim.
    let up = cluster.up_addrs();
    assert_eq!(up.len(), n - 1);
    assert!(
        cluster.ring_correctness() > 0.99,
        "ring did not heal: correctness {}",
        cluster.ring_correctness()
    );
    for a in &up {
        assert_ne!(
            cluster.best_successor(a).as_deref(),
            Some(victim.as_str()),
            "{a} still points at the crashed node"
        );
    }

    // Lookups that complete still resolve to the correct live owner. Note
    // that the published specification has no "forward to successor"
    // fallback: once finger entries through the failed node expire, lookups
    // whose target falls into the resulting finger gap are dropped rather
    // than rerouted, so completion after a failure is well below 100% on a
    // small ring (the paper observes the same fragility under churn, §5.2).
    let mut completed = 0;
    let mut correct = 0;
    let total = 10;
    for i in 0..total {
        let key = Uint160::hash_of(format!("heal-{i}").as_bytes());
        let origin = up[i % up.len()].clone();
        let handle = cluster.issue_lookup_from(&origin, key);
        cluster.run_for(8.0);
        if let Some(outcome) = cluster.outcome(&handle) {
            completed += 1;
            let expect = p2_harness::cluster::expected_owner(key, &up).unwrap();
            if outcome.owner == expect {
                correct += 1;
            }
        }
    }
    assert!(completed >= 1, "no lookup completed after the crash");
    assert_eq!(
        correct, completed,
        "completed lookups must name the correct live owner"
    );
}

#[test]
fn crashed_node_can_rejoin_and_is_reintegrated() {
    let n = 6;
    let mut cluster = ChordCluster::build(n, 150, 13);
    let victim = cluster.addrs()[2].clone();
    cluster.crash(&victim);
    cluster.run_for(60.0);
    cluster.rejoin(&victim);
    cluster.run_for(240.0);

    assert!(
        cluster.is_joined(&victim),
        "rejoined node never found a successor"
    );
    // And the overall ring is mostly consistent again.
    assert!(
        cluster.ring_correctness() >= 0.8,
        "ring correctness after rejoin: {}",
        cluster.ring_correctness()
    );
}

#[test]
fn chord_survives_moderate_packet_loss() {
    // Build a small ring over a lossy network: soft-state refresh plus
    // periodic retries should still converge, albeit more slowly.
    let n = 5;
    let mut config = NetworkConfig::emulab_default(3);
    config.loss_rate = 0.05;
    let mut sim: Simulator<P2Host> = Simulator::new(config);
    let addrs: Vec<String> = (0..n).map(|i| format!("lossy{i}:1000")).collect();
    for (i, addr) in addrs.iter().enumerate() {
        let landmark = if i == 0 {
            None
        } else {
            Some(addrs[0].as_str())
        };
        let host = chord::build_node(addr, landmark, 400 + i as u64, true).unwrap();
        sim.add_node(addr.clone(), host);
    }
    for (i, addr) in addrs.iter().enumerate() {
        sim.start_node(addr);
        sim.inject(addr, chord::join_tuple(addr, 10 + i as i64));
        sim.run_for(SimTime::from_secs(2));
    }
    for round in 0..15 {
        sim.run_for(SimTime::from_secs(20));
        for (i, addr) in addrs.iter().enumerate() {
            let joined = !sim
                .node(addr)
                .unwrap()
                .node()
                .table("bestSucc")
                .unwrap()
                .lock()
                .is_empty();
            if !joined {
                sim.inject(addr, chord::join_tuple(addr, 1000 + round * 10 + i as i64));
            }
        }
    }
    sim.run_for(SimTime::from_secs(120));

    let joined = addrs
        .iter()
        .filter(|a| {
            !sim.node(a)
                .unwrap()
                .node()
                .table("bestSucc")
                .unwrap()
                .lock()
                .is_empty()
        })
        .count();
    assert!(
        joined >= n - 1,
        "only {joined}/{n} nodes joined under 5% packet loss"
    );
    assert!(
        sim.stats().messages_dropped > 0,
        "loss was configured but nothing dropped"
    );
}
