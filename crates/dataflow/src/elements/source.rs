//! Event source elements (`periodic`).

use p2_value::{SimTime, Tuple, Value};

use crate::element::{Element, ElementCtx};

/// Emits `periodic`-style tuples at a fixed interval.
///
/// OverLog's built-in `periodic(X, E, P)` stream produces, every `P` seconds
/// at node `X`, a tuple carrying the node address, a fresh unique event
/// identifier, and the period. A fourth argument limits the number of
/// firings (`periodic(X, E, 0, 1)` fires exactly once at start-up, which
/// Appendix A uses for initialization rules).
///
/// To avoid every node in a large simulation firing in lock-step, the first
/// firing is offset by a uniformly random phase in `[0, P)` drawn from the
/// node's deterministic RNG; this mirrors the behaviour of real deployments
/// where node start times are not synchronized. The phase can be disabled
/// for unit tests.
pub struct Periodic {
    out_name: String,
    period: f64,
    remaining: Option<u64>,
    period_value: Value,
    extra_args: Vec<Value>,
    jitter_phase: bool,
}

impl Periodic {
    /// Creates a periodic source emitting tuples named `out_name` every
    /// `period` seconds, at most `count` times (`None` = forever).
    pub fn new(out_name: impl Into<String>, period: f64, count: Option<u64>) -> Periodic {
        Periodic {
            out_name: out_name.into(),
            period: period.max(0.0),
            remaining: count,
            period_value: Value::Double(period),
            extra_args: Vec::new(),
            jitter_phase: true,
        }
    }

    /// Overrides the value placed in the period field of emitted tuples
    /// (so that a rule written `periodic(X, E, 3)` sees the literal `3`
    /// it matches on).
    pub fn with_period_value(mut self, v: Value) -> Periodic {
        self.period_value = v;
        self
    }

    /// Appends additional constant fields to every emitted tuple (used for
    /// the 4-argument `periodic(X, E, P, C)` form).
    pub fn with_extra_args(mut self, extra: Vec<Value>) -> Periodic {
        self.extra_args = extra;
        self
    }

    /// Disables the random initial phase (deterministic first firing at
    /// exactly one period after start, or immediately for period 0).
    pub fn without_phase_jitter(mut self) -> Periodic {
        self.jitter_phase = false;
        self
    }

    fn fire(&mut self, ctx: &mut ElementCtx<'_>) {
        if let Some(remaining) = &mut self.remaining {
            if *remaining == 0 {
                return;
            }
            *remaining -= 1;
        }
        let event_id = Value::Int((ctx.eval().next_u64() >> 1) as i64);
        let mut values = vec![
            Value::str(ctx.local_addr()),
            event_id,
            self.period_value.clone(),
        ];
        values.extend(self.extra_args.iter().cloned());
        ctx.emit(0, Tuple::new(&self.out_name, values));
        let more = self.remaining.map(|r| r > 0).unwrap_or(true);
        if more && self.period > 0.0 {
            ctx.schedule(0, SimTime::from_secs_f64(self.period));
        }
    }
}

impl Element for Periodic {
    fn class(&self) -> &'static str {
        "Periodic"
    }

    fn push(&mut self, _port: usize, _tuple: &Tuple, _ctx: &mut ElementCtx<'_>) {
        // Periodic sources have no inputs.
    }

    fn on_start(&mut self, ctx: &mut ElementCtx<'_>) {
        if self.period <= 0.0 {
            // Immediate one-shot (or as many shots as requested, all now).
            let shots = self.remaining.unwrap_or(1);
            for _ in 0..shots {
                self.fire(ctx);
            }
            return;
        }
        let phase = if self.jitter_phase {
            self.period * ctx.eval().next_f64()
        } else {
            self.period
        };
        ctx.schedule(0, SimTime::from_secs_f64(phase));
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut ElementCtx<'_>) {
        self.fire(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Collector;
    use crate::engine::{Engine, Graph};

    fn build(
        period: f64,
        count: Option<u64>,
        jitter: bool,
    ) -> (Engine, crate::elements::CollectorHandle) {
        let mut g = Graph::new();
        let mut p =
            Periodic::new("periodic", period, count).with_period_value(Value::Int(period as i64));
        if !jitter {
            p = p.without_phase_jitter();
        }
        let p = g.add("periodic", Box::new(p));
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(p, 0, c, 0);
        let engine = Engine::new(g, "n1", 42);
        (engine, buf)
    }

    #[test]
    fn fires_repeatedly_with_fresh_event_ids() {
        let (mut engine, buf) = build(3.0, None, false);
        engine.start(SimTime::ZERO);
        engine.advance_to(SimTime::from_secs(10));
        let ticks = buf.lock();
        assert_eq!(ticks.len(), 3); // at t=3,6,9
        let ids: Vec<&Value> = ticks.iter().map(|(_, t)| t.field(1)).collect();
        assert_ne!(ids[0], ids[1]);
        assert_eq!(ticks[0].1.field(0), &Value::str("n1"));
        assert_eq!(ticks[0].1.field(2), &Value::Int(3));
    }

    #[test]
    fn one_shot_with_zero_period_fires_at_start() {
        let (mut engine, buf) = build(0.0, Some(1), false);
        engine.start(SimTime::from_secs(5));
        engine.advance_to(SimTime::from_secs(100));
        assert_eq!(buf.lock().len(), 1);
    }

    #[test]
    fn count_limits_firings() {
        let (mut engine, buf) = build(1.0, Some(2), false);
        engine.start(SimTime::ZERO);
        engine.advance_to(SimTime::from_secs(50));
        assert_eq!(buf.lock().len(), 2);
        assert_eq!(engine.next_deadline(), None);
    }

    #[test]
    fn jittered_phase_stays_within_one_period() {
        let (mut engine, buf) = build(10.0, None, true);
        engine.start(SimTime::ZERO);
        engine.advance_to(SimTime::from_secs(10));
        let ticks = buf.lock();
        assert_eq!(ticks.len(), 1);
        assert!(ticks[0].0 <= SimTime::from_secs(10));
    }

    #[test]
    fn extra_args_are_appended() {
        let mut g = Graph::new();
        let p = Periodic::new("periodic", 0.0, Some(1))
            .with_period_value(Value::Int(0))
            .with_extra_args(vec![Value::Int(1)])
            .without_phase_jitter();
        let p = g.add("periodic", Box::new(p));
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(p, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.start(SimTime::ZERO);
        let ticks = buf.lock();
        assert_eq!(ticks[0].1.arity(), 4);
        assert_eq!(ticks[0].1.field(3), &Value::Int(1));
    }
}
