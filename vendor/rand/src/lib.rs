//! Vendored stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no network access, so this workspace ships a
//! deterministic implementation of the subset of rand used by the harness:
//! [`rngs::SmallRng`], the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits,
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++
//! seeded through SplitMix64 — the same family the real `SmallRng` uses on
//! 64-bit targets — so quality is adequate for simulation workloads, though
//! the exact stream differs from upstream rand.

use std::ops::Range;

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Standard`] can sample uniformly.
pub trait Standard {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Compute the span in i128 so wide signed ranges (e.g.
                // i32::MIN..i32::MAX) don't overflow or sign-extend; every
                // supported type's span fits in u64.
                let span = ((self.end as i128) - (self.start as i128)) as u64;
                // Modulo bias is negligible for the simulation-sized spans
                // used here (all far below 2^32).
                let offset = rng.next_u64() % span;
                // Wrapping add in the target type is exact modulo 2^bits,
                // which lands inside [start, end) because offset < span.
                self.start.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_int_range!(u64, usize, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn extreme_signed_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(i32::MIN..i32::MAX);
            assert!(v < i32::MAX);
            let w = rng.gen_range(i64::MIN..i64::MAX);
            assert!(w < i64::MAX);
            let u = rng.gen_range(0u64..u64::MAX);
            assert!(u < u64::MAX);
        }
    }

    #[test]
    fn byte_arrays_fill_completely() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a: [u8; 16] = rng.gen();
        let b: [u8; 16] = rng.gen();
        assert_ne!(a, b);
    }
}
