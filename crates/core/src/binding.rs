//! Variable binding environments and OverLog → PEL expression compilation.
//!
//! While planning a rule strand the planner tracks, for every OverLog
//! variable, the field position it occupies in the tuple flowing down the
//! strand (the concatenation of the trigger tuple and every joined table
//! row, plus any fields appended by assignments). [`Layout`] is that
//! mapping; [`compile_expr`] turns an OverLog expression over variables into
//! a PEL expression over field positions.

use std::collections::HashMap;

use p2_overlog::{Expr as OExpr, Predicate};
use p2_pel::{Builtin, Expr as PExpr};

use crate::error::PlanError;

/// Mapping from OverLog variables to field positions in the strand tuple.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    vars: HashMap<String, usize>,
    len: usize,
}

/// Join / filter information extracted when a predicate's fields are merged
/// into a layout.
#[derive(Debug, Clone, Default)]
pub struct PredicateBinding {
    /// `(existing field, predicate column)` pairs where a predicate argument
    /// is a variable that the layout already binds (these become equijoin
    /// keys when the predicate is a table).
    pub join_keys: Vec<(usize, usize)>,
    /// `(predicate column, constant)` pairs for literal arguments.
    pub const_checks: Vec<(usize, p2_value::Value)>,
    /// `(column, column)` pairs for variables repeated *within* the
    /// predicate itself.
    pub repeat_checks: Vec<(usize, usize)>,
}

impl Layout {
    /// Creates an empty layout.
    pub fn new() -> Layout {
        Layout::default()
    }

    /// Number of fields in the strand tuple so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no fields have been bound yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Position of a variable, if bound.
    pub fn get(&self, var: &str) -> Option<usize> {
        self.vars.get(var).copied()
    }

    /// True if the variable is bound.
    pub fn is_bound(&self, var: &str) -> bool {
        self.vars.contains_key(var)
    }

    /// Appends a single named field (used for assignment results); returns
    /// its position.
    pub fn push_var(&mut self, var: impl Into<String>) -> usize {
        let pos = self.len;
        self.vars.entry(var.into()).or_insert(pos);
        self.len += 1;
        pos
    }

    /// Appends an anonymous field (e.g. an aggregate result); returns its
    /// position.
    pub fn push_anonymous(&mut self) -> usize {
        let pos = self.len;
        self.len += 1;
        pos
    }

    /// Merges a predicate's arguments into the layout, assuming the
    /// predicate's fields are appended after the current fields (as the
    /// [`Join`](p2_dataflow::elements::Join) element does).
    ///
    /// Returns the join keys, constant checks and repeated-variable checks
    /// needed to make the match exact. When `absorb` is false the layout is
    /// not modified (used for negated predicates, whose fields never become
    /// part of the strand tuple).
    pub fn bind_predicate(
        &mut self,
        pred: &Predicate,
        absorb: bool,
    ) -> Result<PredicateBinding, PlanError> {
        let mut binding = PredicateBinding::default();
        let mut local_positions: HashMap<String, usize> = HashMap::new();
        for (col, arg) in pred.args.iter().enumerate() {
            match arg {
                OExpr::Wildcard => {}
                OExpr::Const(v) => binding.const_checks.push((col, v.clone())),
                OExpr::Var(v) => {
                    if let Some(prev_col) = local_positions.get(v) {
                        binding.repeat_checks.push((*prev_col, col));
                    } else if let Some(existing) = self.get(v) {
                        binding.join_keys.push((existing, col));
                        local_positions.insert(v.clone(), col);
                    } else {
                        local_positions.insert(v.clone(), col);
                    }
                }
                other => {
                    return Err(PlanError::program(format!(
                        "predicate `{}` argument {col} must be a variable, wildcard or constant, \
                         found {other:?}",
                        pred.name
                    )))
                }
            }
        }
        if absorb {
            let base = self.len;
            for (col, arg) in pred.args.iter().enumerate() {
                if let OExpr::Var(v) = arg {
                    self.vars.entry(v.clone()).or_insert(base + col);
                }
            }
            self.len += pred.args.len();
        }
        Ok(binding)
    }

    /// Compiles an OverLog expression into PEL over this layout.
    pub fn compile_expr(&self, expr: &OExpr) -> Result<PExpr, PlanError> {
        compile_expr(expr, self)
    }
}

/// Compiles an OverLog expression over variables into a PEL expression over
/// field positions of the strand tuple described by `layout`.
pub fn compile_expr(expr: &OExpr, layout: &Layout) -> Result<PExpr, PlanError> {
    match expr {
        OExpr::Const(v) => Ok(PExpr::Const(v.clone())),
        OExpr::Wildcard => Err(PlanError::program(
            "`_` cannot appear inside an arithmetic or comparison expression",
        )),
        OExpr::Var(v) => layout
            .get(v)
            .map(PExpr::Field)
            .ok_or_else(|| PlanError::program(format!("variable `{v}` is not bound here"))),
        OExpr::Call { name, args, .. } => {
            let builtin = Builtin::from_name(name)
                .ok_or_else(|| PlanError::program(format!("unknown built-in function `{name}`")))?;
            let mut compiled = Vec::with_capacity(args.len());
            for a in args {
                compiled.push(compile_expr(a, layout)?);
            }
            Ok(PExpr::Call(builtin, compiled))
        }
        OExpr::Unary { op, expr } => Ok(PExpr::Unary(*op, Box::new(compile_expr(expr, layout)?))),
        OExpr::Binary { op, lhs, rhs } => Ok(PExpr::Binary(
            *op,
            Box::new(compile_expr(lhs, layout)?),
            Box::new(compile_expr(rhs, layout)?),
        )),
        OExpr::Range {
            kind,
            value,
            low,
            high,
        } => Ok(PExpr::Interval {
            kind: *kind,
            value: Box::new(compile_expr(value, layout)?),
            low: Box::new(compile_expr(low, layout)?),
            high: Box::new(compile_expr(high, layout)?),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_overlog::parse_program;
    use p2_pel::{BinOp, EvalContext, Program};
    use p2_value::{Tuple, Value};

    fn rule_predicates(src: &str) -> Vec<Predicate> {
        let p = parse_program(src).unwrap();
        p.rules[0]
            .positive_predicates()
            .into_iter()
            .cloned()
            .collect()
    }

    #[test]
    fn bind_trigger_then_join() {
        // CM7 succ@NI(NI,S,SI) :- succ@NI(NI,S,SI), pingResp@NI(NI,SI,E).
        let preds =
            rule_predicates("CM7 succ@NI(NI,S,SI) :- pingResp@NI(NI,SI,E), succ@NI(NI,S,SI).");
        let mut layout = Layout::new();
        let trigger = layout.bind_predicate(&preds[0], true).unwrap();
        assert!(trigger.join_keys.is_empty());
        assert_eq!(layout.len(), 3);
        assert_eq!(layout.get("NI"), Some(0));
        assert_eq!(layout.get("SI"), Some(1));

        let join = layout.bind_predicate(&preds[1], true).unwrap();
        // NI joins on succ column 0, SI on succ column 2.
        assert_eq!(join.join_keys, vec![(0, 0), (1, 2)]);
        assert_eq!(layout.len(), 6);
        assert_eq!(layout.get("S"), Some(4));
    }

    #[test]
    fn constants_and_repeats_become_checks() {
        let preds = rule_predicates("R1 out@X(X) :- trigger@X(X, X, 3, \"-\", _).");
        let mut layout = Layout::new();
        let b = layout.bind_predicate(&preds[0], true).unwrap();
        assert_eq!(b.repeat_checks, vec![(0, 1)]);
        assert_eq!(b.const_checks.len(), 2);
        assert_eq!(b.const_checks[0], (2, Value::Int(3)));
        assert_eq!(b.const_checks[1], (3, Value::str("-")));
        assert_eq!(layout.len(), 5);
    }

    #[test]
    fn negated_predicates_do_not_extend_layout() {
        let preds = rule_predicates("R1 out@X(X) :- trigger@X(X, Y), member@X(X, Y).");
        let mut layout = Layout::new();
        layout.bind_predicate(&preds[0], true).unwrap();
        let before = layout.len();
        let b = layout.bind_predicate(&preds[1], false).unwrap();
        assert_eq!(layout.len(), before);
        assert_eq!(b.join_keys, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn compile_expression_resolves_fields() {
        let mut layout = Layout::new();
        layout.push_var("N");
        layout.push_var("S");
        let p = parse_program("R1 out@X(N, D) :- succ@X(N, S), D := S - N - 1.").unwrap();
        let assign = p.rules[0]
            .body
            .iter()
            .find_map(|t| match t {
                p2_overlog::BodyTerm::Assign { expr, .. } => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        let compiled = compile_expr(&assign, &layout).unwrap();
        // Evaluate: S=10, N=3 -> 6.
        let prog = Program::compile(&compiled);
        let tuple = Tuple::new("t", vec![Value::Int(3), Value::Int(10)]);
        let mut ctx = EvalContext::new("n1", 1);
        assert_eq!(prog.eval(&tuple, &mut ctx).unwrap(), Value::Int(6));
    }

    #[test]
    fn compile_errors_for_unbound_and_unknown() {
        let layout = Layout::new();
        assert!(compile_expr(&OExpr::Var("Z".into()), &layout).is_err());
        assert!(compile_expr(
            &OExpr::Call {
                name: "f_bogus".into(),
                location: None,
                args: vec![]
            },
            &layout
        )
        .is_err());
        assert!(compile_expr(&OExpr::Wildcard, &layout).is_err());
        // Known builtin compiles.
        let e = compile_expr(
            &OExpr::Call {
                name: "f_now".into(),
                location: None,
                args: vec![],
            },
            &layout,
        )
        .unwrap();
        assert!(matches!(e, PExpr::Call(Builtin::Now, _)));
    }

    #[test]
    fn push_var_is_idempotent_for_existing_names() {
        let mut layout = Layout::new();
        let a = layout.push_var("X");
        let b = layout.push_var("X");
        // The second push appends a field but keeps the original binding.
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(layout.get("X"), Some(0));
        assert_eq!(layout.len(), 2);
    }

    #[test]
    fn binary_ops_compile() {
        let mut layout = Layout::new();
        layout.push_var("A");
        let e = OExpr::Binary {
            op: BinOp::Gt,
            lhs: Box::new(OExpr::Var("A".into())),
            rhs: Box::new(OExpr::Const(Value::Int(3))),
        };
        assert!(matches!(
            compile_expr(&e, &layout).unwrap(),
            PExpr::Binary(BinOp::Gt, _, _)
        ));
    }
}
