//! Elements bridging the dataflow graph and stored tables: insert, delete,
//! per-event aggregation probes, and materialized table aggregates.
//!
//! # Incremental aggregation
//!
//! [`TableAgg`] is the delta protocol's canonical consumer (see the
//! `p2_table` module docs): instead of recomputing `Table::aggregate` over
//! the whole table on every poke, it subscribes to the table's exact
//! `Insert`/`Delete`/`Expire`/`Evict` delta stream and maintains per-group
//! state incrementally — O(1) per delta for `count`/`sum`/`avg`, with
//! `min`/`max` falling back to a single batched group rescan only when the
//! current extremum is retracted. Emission timing and values match the
//! recompute-per-poke semantics (including the PR 3 vanished-group
//! retraction contract), which is what keeps the 100-node golden event
//! pins bit-for-bit; a property test pins the equivalence against a
//! from-scratch recompute model under arbitrary
//! insert/delete/expire/evict interleavings. Two deliberate deviations:
//! when several groups change in one sync they now emit in one sorted
//! pass (the old element emitted changed groups in process-random
//! `HashMap` order — a latent determinism hazard; single-group tables,
//! which all shipped programs use, are unaffected), and `sum`/`avg` over
//! *floating-point* contributions maintain a running total whose
//! retractions can drift in the last ulp relative to a from-scratch fold
//! (integer contributions — every shipped aggregate — are exact).

use std::collections::{HashMap, HashSet};

use p2_pel::{EvalContext, Program};
use p2_table::{
    AggFunc, AggState, DeltaKind, DeltaSubscription, InsertOutcome, RowId, TableDelta, TableRef,
};
use p2_value::{Tuple, Value};

use crate::element::{Element, ElementCtx};

/// Stores arriving tuples into a table and re-emits them as *deltas*.
///
/// Every accepted insert (new row, replacement, or soft-state refresh) is
/// forwarded on port 0 so that downstream rules triggered by updates to this
/// table (e.g. `bestSucc :- succ, ...`) see the change. Rows evicted by the
/// size bound are emitted on port 1 for optional handling.
pub struct Insert {
    table: TableRef,
    /// Number of inserts that failed (malformed tuples).
    pub errors: u64,
    /// Reused eviction spill buffer: eviction-heavy tables hit the
    /// size-bound path on every insert, and this keeps that path from
    /// allocating a fresh `Vec` per tuple (`Table::insert_spill`).
    spill: Vec<Tuple>,
}

impl Insert {
    /// Creates an insert bridge for `table`.
    pub fn new(table: TableRef) -> Insert {
        Insert {
            table,
            errors: 0,
            spill: Vec::new(),
        }
    }
}

impl Element for Insert {
    fn class(&self) -> &'static str {
        "Insert"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        debug_assert!(self.spill.is_empty(), "spill buffer drained every call");
        let result = self
            .table
            .lock()
            .insert_spill(tuple.clone(), ctx.now(), &mut self.spill);
        match result {
            Ok(outcome) => {
                // A soft-state refresh of an identical row leaves the table
                // unchanged; anything else (new row, replacement, eviction)
                // is a real mutation the profiler should see.
                let refreshed = matches!(outcome, InsertOutcome::Refreshed);
                if !refreshed || !self.spill.is_empty() {
                    ctx.note_state_change();
                }
                // The poke-stream DeltaKind discriminant: a pure refresh is
                // tagged so the scheduler can suppress it at
                // refresh-transparent strands; everything else asserts.
                let kind = if refreshed {
                    DeltaKind::Refresh
                } else {
                    DeltaKind::Assert
                };
                ctx.emit_kind(0, tuple.clone(), kind);
                for e in self.spill.drain(..) {
                    ctx.emit_kind(1, e, DeltaKind::Retract);
                }
            }
            Err(_) => {
                self.errors += 1;
                self.spill.clear();
            }
        }
    }
}

/// Removes the arriving tuple from a table (OverLog `delete` rules).
///
/// Removed rows are emitted on port 0 so deletions can drive further
/// processing (e.g. re-computing a materialized aggregate).
pub struct Delete {
    table: TableRef,
    /// Number of deletes that failed (malformed tuples).
    pub errors: u64,
    /// Reused removal spill buffer, mirroring `Insert`'s eviction buffer:
    /// the delete hot path (`Table::delete_matching_spill`) appends removed
    /// rows here instead of allocating a fresh `Vec` per tuple.
    spill: Vec<Tuple>,
}

impl Delete {
    /// Creates a delete bridge for `table`.
    pub fn new(table: TableRef) -> Delete {
        Delete {
            table,
            errors: 0,
            spill: Vec::new(),
        }
    }
}

impl Element for Delete {
    fn class(&self) -> &'static str {
        "Delete"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        debug_assert!(self.spill.is_empty(), "spill buffer drained every call");
        let result = self
            .table
            .lock()
            .delete_matching_spill(tuple, &mut self.spill);
        match result {
            Ok(_removed) => {
                if !self.spill.is_empty() {
                    ctx.note_state_change();
                }
                for r in self.spill.drain(..) {
                    ctx.emit_kind(0, r, DeltaKind::Retract);
                }
            }
            Err(_) => {
                self.errors += 1;
                self.spill.clear();
            }
        }
    }
}

/// Per-event aggregation over a table (Figure 2's "Agg min<D> on finger").
///
/// For every arriving (partially joined) event tuple, the probe scans the
/// configured table; each candidate row is concatenated onto the event
/// tuple, the optional `filter` decides whether it contributes, and
/// `agg_expr` computes the contributed value.
///
/// The emitted tuple is `event ++ witness_row ++ [aggregate]`:
///
/// * for `min`/`max` the witness is the table row achieving the extremum
///   (first one scanned on ties), which gives OverLog its "choose the member
///   associated with the maximum random number" / "first address of a finger
///   with that minimum distance" semantics — the head of the rule may refer
///   to columns of the winning row;
/// * for `count`/`sum`/`avg` there is no meaningful witness, so the row part
///   is null-padded; `count` and `sum` emit a zero even when no row
///   contributes (Narada's `membersFound ... count<*>` relies on seeing 0),
///   while `min`/`max`/`avg` emit nothing.
///
/// # Delta-fed mode
///
/// A probe built through [`AggProbe::with_subscription`] /
/// [`AggProbe::new_incremental`] stops rescanning the table per event.
/// It keeps a `RowId`-sorted **mirror** of the table maintained from the
/// delta stream, plus per-*event-class* contribution lists: two events
/// that agree on every field the filter and aggregate expression actually
/// read (and on arity) compute identical per-row results, so they share
/// one cached [`ProbeGroup`]. A probe then folds the group's precomputed
/// `(RowId, value)` contributions — already in scan order — through the
/// very same witness/accumulate/finish logic as the scan path, which keeps
/// emissions bit-for-bit identical. Delta-queue overflow or any state
/// incoherence falls back to a counted full scan
/// ([`p2_table::Table::scan_rows_counted`]) and reports the rebuild via
/// [`p2_table::Table::note_rebuild`]. Expressions that read the RNG or the
/// clock are not pure functions of their inputs, so such probes refuse the
/// cache (see [`AggProbe::can_increment`]) and stay on the scan path.
pub struct AggProbe {
    table: TableRef,
    table_arity: usize,
    func: AggFunc,
    filter: Option<Program>,
    agg_expr: Program,
    out_name: String,
    /// Delta-fed state; `None` runs the recompute-per-event scan path.
    inc: Option<ProbeCache>,
}

/// Bound on the per-event-class groups a delta-fed [`AggProbe`] keeps
/// alive; beyond it the least-recently-probed group is replaced. Chord's
/// hot probes (SU1's best-successor scan) use a single class per node, so
/// the cap only matters for per-lookup classes (L2), where the group is
/// rebuilt from the mirror instead of from a table scan.
const MAX_PROBE_GROUPS: usize = 8;

/// Contribution state for one class of event tuples (same arity, same
/// values at every field the probe's programs read).
struct ProbeGroup {
    /// `(event arity, referenced-field projection)` identifying the class.
    key: (usize, Vec<Value>),
    /// Representative event; delta-time evaluations join rows against it.
    event: Tuple,
    /// `(row, value)` for every mirror row passing the filter, ascending
    /// `RowId` — exactly the table's scan order.
    contribs: Vec<(RowId, Value)>,
    /// Tick of the last probe that used this group (LRU replacement).
    last_used: u64,
}

/// The delta-fed half of an [`AggProbe`].
struct ProbeCache {
    sub: DeltaSubscription,
    /// `RowId`-sorted mirror of the aggregate table.
    rows: Vec<(RowId, Tuple)>,
    groups: Vec<ProbeGroup>,
    /// Sorted field indices the filter and aggregate expression read.
    refs: Vec<usize>,
    needs_rebuild: bool,
    /// False until the first mirror build (which is initialization, not a
    /// fallback, and therefore not reported via `note_rebuild`).
    built: bool,
    /// Reused delta drain buffer.
    scratch: Vec<TableDelta>,
    /// Reused class-key buffer (group hits allocate nothing).
    key_scratch: Vec<Value>,
    tick: u64,
}

/// Evaluates one row's contribution against `event ++ row`, replicating
/// the scan path's row handling exactly: a false or failed filter and a
/// failed aggregate expression both mean "does not contribute".
fn contribution(
    filter: &Option<Program>,
    agg_expr: &Program,
    event: &Tuple,
    row: &Tuple,
    ev: &mut EvalContext,
) -> Option<Value> {
    if let Some(filter) = filter {
        match filter.eval_bool_joined(event, row, ev) {
            Ok(true) => {}
            _ => return None,
        }
    }
    agg_expr.eval_joined(event, row, ev).ok()
}

impl AggProbe {
    /// Creates a recompute-per-event aggregation probe over a table whose
    /// rows have `table_arity` fields (every event pays a counted full
    /// scan).
    pub fn new(
        table: TableRef,
        table_arity: usize,
        func: AggFunc,
        filter: Option<Program>,
        agg_expr: Program,
        out_name: impl Into<String>,
    ) -> AggProbe {
        AggProbe {
            table,
            table_arity,
            func,
            filter,
            agg_expr,
            out_name: out_name.into(),
            inc: None,
        }
    }

    /// True if a probe with these programs may cache evaluation results
    /// across events: programs that read the RNG (`f_rand`, `f_coinFlip`)
    /// or the clock (`f_now`) are not pure functions of their inputs and
    /// must stay on the scan path. Planners check this before creating the
    /// delta subscription for [`AggProbe::with_subscription`].
    pub fn can_increment(filter: &Option<Program>, agg_expr: &Program) -> bool {
        let pure = |p: &Program| !p.uses_random() && !p.uses_time();
        pure(agg_expr) && filter.as_ref().is_none_or(pure)
    }

    /// Creates a delta-fed probe over an already-created subscription (the
    /// planner pools subscriptions per table at instantiation). The caller
    /// must have verified [`AggProbe::can_increment`] — an impure program
    /// would cache stale evaluation results.
    pub fn with_subscription(
        table: TableRef,
        table_arity: usize,
        func: AggFunc,
        filter: Option<Program>,
        agg_expr: Program,
        out_name: impl Into<String>,
        sub: DeltaSubscription,
    ) -> AggProbe {
        debug_assert!(Self::can_increment(&filter, &agg_expr));
        let mut refs: Vec<usize> = agg_expr
            .ops()
            .iter()
            .chain(filter.iter().flat_map(|f| f.ops().iter()))
            .filter_map(|op| match op {
                p2_pel::Op::Load(i) => Some(*i),
                _ => None,
            })
            .collect();
        refs.sort_unstable();
        refs.dedup();
        AggProbe {
            table,
            table_arity,
            func,
            filter,
            agg_expr,
            out_name: out_name.into(),
            inc: Some(ProbeCache {
                sub,
                rows: Vec::new(),
                groups: Vec::new(),
                refs,
                needs_rebuild: true,
                built: false,
                scratch: Vec::new(),
                key_scratch: Vec::new(),
                tick: 0,
            }),
        }
    }

    /// Creates a delta-fed probe, subscribing to the table's delta stream;
    /// falls back to the scan path when the programs are impure.
    pub fn new_incremental(
        table: TableRef,
        table_arity: usize,
        func: AggFunc,
        filter: Option<Program>,
        agg_expr: Program,
        out_name: impl Into<String>,
    ) -> AggProbe {
        if !Self::can_increment(&filter, &agg_expr) {
            return Self::new(table, table_arity, func, filter, agg_expr, out_name);
        }
        let sub = table.lock().subscribe_deltas();
        Self::with_subscription(table, table_arity, func, filter, agg_expr, out_name, sub)
    }

    /// True if this probe runs in delta-fed mode (planner diagnostics).
    pub fn is_incremental(&self) -> bool {
        self.inc.is_some()
    }

    /// The recompute path: scan the table through the borrowing iterator,
    /// evaluating the filter and aggregate expression against the *virtual*
    /// join `event ++ row` (`Program::eval_joined`): no per-row
    /// joined-tuple materialization; only the winning witness row is
    /// cloned.
    fn push_scan(&mut self, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let guard = self.table.lock();
        // Contributions stream straight into the shared accumulator — no
        // per-event contribution vector, no second fold over it. A value
        // the accumulator rejects (non-numeric sum/avg) aborts the whole
        // probe without emitting, exactly like `AggFunc::apply` erroring
        // over the collected vector used to.
        let mut state = AggState::new(self.func);
        let mut witness: Option<(Value, Tuple)> = None;
        for row in guard.scan_iter_counted() {
            if let Some(filter) = &self.filter {
                match filter.eval_bool_joined(tuple, row, ctx.eval()) {
                    Ok(true) => {}
                    _ => continue,
                }
            }
            let Ok(v) = self.agg_expr.eval_joined(tuple, row, ctx.eval()) else {
                continue;
            };
            let better = match (&witness, self.func) {
                (None, _) => true,
                (Some((best, _)), AggFunc::Min) => v < *best,
                (Some((best, _)), AggFunc::Max) => v > *best,
                _ => false,
            };
            if better {
                witness = Some((v.clone(), row.clone()));
            }
            if state.accumulate(&v).is_err() {
                return;
            }
        }
        drop(guard);
        // min/max/avg over an empty contribution set finish to `None` and
        // produce no tuple at all; count/sum legitimately produce 0.
        let Some(aggregate) = state.finish() else {
            return;
        };
        let row_part: Vec<Value> = match (self.func, witness) {
            (AggFunc::Min | AggFunc::Max, Some((_, row))) => row.values().to_vec(),
            _ => vec![Value::Null; self.table_arity],
        };
        let mut extra = row_part;
        extra.push(aggregate);
        ctx.emit(0, tuple.extended(extra).renamed(&self.out_name));
    }

    /// The delta-fed path: catch up on the table's deltas, locate (or
    /// build) the event's contribution group, then fold its contributions
    /// in scan order through the same witness/accumulate/finish logic as
    /// [`AggProbe::push_scan`].
    fn push_incremental(&mut self, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        let AggProbe {
            table,
            table_arity,
            func,
            filter,
            agg_expr,
            out_name,
            inc,
        } = self;
        let cache = inc.as_mut().expect("push_incremental requires the cache");
        // Quiet fast path: no pending deltas means the mirror and every
        // cached group are already exact — skip the lock/drain round trip
        // (one atomic load instead).
        if cache.needs_rebuild || cache.sub.has_pending() {
            // Catching up on deltas mutates the mirror/groups: real work,
            // not a refresh no-op.
            ctx.note_state_change();
            // Borrow a local clone of the `Arc` so the cache stays freely
            // borrowable while the table is locked.
            let table = table.clone();
            let mut guard = table.lock();
            if guard.drain_deltas(&cache.sub, &mut cache.scratch) {
                cache.needs_rebuild = true;
                cache.scratch.clear();
            }
            if !cache.needs_rebuild && !cache.apply_deltas(filter, agg_expr, ctx.eval()) {
                cache.needs_rebuild = true;
            }
            cache.scratch.clear();
            if cache.needs_rebuild {
                if cache.built {
                    guard.note_rebuild();
                }
                cache.rows = guard
                    .scan_rows_counted()
                    .map(|(id, t)| (id, t.clone()))
                    .collect();
                cache.groups.clear();
                cache.needs_rebuild = false;
                cache.built = true;
            }
        }

        cache.tick += 1;
        let tick = cache.tick;
        let arity = tuple.arity();
        // The class key is built in a reused scratch vector: probes that
        // hit an existing group (the steady state) allocate nothing.
        cache.key_scratch.clear();
        let refs = &cache.refs;
        cache.key_scratch.extend(
            refs.iter()
                .filter(|&&i| i < arity)
                .map(|&i| tuple.field(i).clone()),
        );
        let pos = cache
            .groups
            .iter()
            .position(|g| g.key.0 == arity && g.key.1 == cache.key_scratch);
        let pos = match pos {
            Some(p) => {
                cache.groups[p].last_used = tick;
                p
            }
            None => {
                let key = std::mem::take(&mut cache.key_scratch);
                // First event of its class: fold the mirror once (instead
                // of the table), caching per-row results for every later
                // event of the class.
                let mut contribs = Vec::new();
                for (id, row) in &cache.rows {
                    if let Some(v) = contribution(filter, agg_expr, tuple, row, ctx.eval()) {
                        contribs.push((*id, v));
                    }
                }
                let group = ProbeGroup {
                    key: (arity, key),
                    event: tuple.clone(),
                    contribs,
                    last_used: tick,
                };
                if cache.groups.len() >= MAX_PROBE_GROUPS {
                    let evict = cache
                        .groups
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, g)| g.last_used)
                        .map(|(i, _)| i)
                        .expect("non-empty group cache");
                    cache.groups[evict] = group;
                    evict
                } else {
                    cache.groups.push(group);
                    cache.groups.len() - 1
                }
            }
        };

        // The fold below is line-for-line the scan path's, over the cached
        // contributions (already in scan order).
        let group = &cache.groups[pos];
        let mut state = AggState::new(*func);
        let mut witness: Option<(&Value, RowId)> = None;
        for (id, v) in &group.contribs {
            let better = match (&witness, *func) {
                (None, _) => true,
                (Some((best, _)), AggFunc::Min) => v < *best,
                (Some((best, _)), AggFunc::Max) => v > *best,
                _ => false,
            };
            if better {
                witness = Some((v, *id));
            }
            if state.accumulate(v).is_err() {
                return;
            }
        }
        let Some(aggregate) = state.finish() else {
            return;
        };
        let row_part: Vec<Value> = match (*func, witness) {
            (AggFunc::Min | AggFunc::Max, Some((_, id))) => {
                let at = cache
                    .rows
                    .binary_search_by_key(&id, |(rid, _)| *rid)
                    .expect("witness row present in mirror");
                cache.rows[at].1.values().to_vec()
            }
            _ => vec![Value::Null; *table_arity],
        };
        let mut extra = row_part;
        extra.push(aggregate);
        ctx.emit(0, tuple.extended(extra).renamed(out_name));
    }
}

impl ProbeCache {
    /// Applies drained deltas to the mirror and every cached group;
    /// `false` means the mirror no longer matches the table and must be
    /// rebuilt from a scan.
    fn apply_deltas(
        &mut self,
        filter: &Option<Program>,
        agg_expr: &Program,
        ev: &mut EvalContext,
    ) -> bool {
        for i in 0..self.scratch.len() {
            let delta = &self.scratch[i];
            if delta.kind.is_removal() {
                match self.rows.binary_search_by_key(&delta.row, |(id, _)| *id) {
                    Ok(at) => {
                        self.rows.remove(at);
                    }
                    Err(_) => return false, // removal of an unknown row
                }
                for g in &mut self.groups {
                    if let Ok(at) = g.contribs.binary_search_by_key(&delta.row, |(id, _)| *id) {
                        g.contribs.remove(at);
                    }
                }
            } else {
                match self.rows.binary_search_by_key(&delta.row, |(id, _)| *id) {
                    Ok(_) => return false, // insert into an occupied slot
                    Err(at) => self.rows.insert(at, (delta.row, delta.tuple.clone())),
                }
                for g in &mut self.groups {
                    if let Some(v) = contribution(filter, agg_expr, &g.event, &delta.tuple, ev) {
                        match g.contribs.binary_search_by_key(&delta.row, |(id, _)| *id) {
                            Ok(_) => return false,
                            Err(at) => g.contribs.insert(at, (delta.row, v)),
                        }
                    }
                }
            }
        }
        true
    }
}

impl Element for AggProbe {
    fn class(&self) -> &'static str {
        "AggProbe"
    }

    fn push(&mut self, _port: usize, tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        if self.inc.is_some() {
            self.push_incremental(tuple, ctx);
        } else {
            self.push_scan(tuple, ctx);
        }
    }
}

/// Incrementally maintained per-group aggregate state.
///
/// `contribs` counts the rows currently contributing (valid group key
/// *and* valid aggregate value, matching `Table::aggregate`'s filtering);
/// the group vanishes when it reaches zero.
#[derive(Debug)]
struct GroupState {
    contribs: usize,
    acc: Accum,
}

#[derive(Debug)]
enum Accum {
    /// `count<*>`: the value is `contribs` itself.
    Count,
    /// Running sum; `non_int` counts non-integer contributions so the
    /// all-int result collapse survives retractions.
    Sum { acc: f64, non_int: usize },
    /// Running sum for the mean (`contribs` is the divisor).
    Avg { acc: f64 },
    /// Current extremum. Retracting a value that is not strictly worse
    /// than `best` (or is incomparable) marks the group `dirty`; dirty
    /// groups are rebuilt in one batched table rescan at the end of the
    /// sync, not per delta.
    MinMax { best: Option<Value>, dirty: bool },
}

impl GroupState {
    fn new(func: AggFunc) -> GroupState {
        GroupState {
            contribs: 0,
            acc: match func {
                AggFunc::Count => Accum::Count,
                AggFunc::Sum => Accum::Sum {
                    acc: 0.0,
                    non_int: 0,
                },
                AggFunc::Avg => Accum::Avg { acc: 0.0 },
                AggFunc::Min | AggFunc::Max => Accum::MinMax {
                    best: None,
                    dirty: false,
                },
            },
        }
    }

    /// Folds one contribution in. `Err` means the value cannot feed this
    /// aggregate (non-numeric sum/avg) — the caller falls back to a full
    /// rebuild, which reproduces `Table::aggregate`'s error behaviour.
    fn insert(&mut self, func: AggFunc, v: &Value) -> Result<(), p2_value::ValueError> {
        match &mut self.acc {
            Accum::Count => {}
            Accum::Sum { acc, non_int } => {
                let d = v.to_double()?;
                if !matches!(v, Value::Int(_)) {
                    *non_int += 1;
                }
                *acc += d;
            }
            Accum::Avg { acc } => *acc += v.to_double()?,
            Accum::MinMax { best, dirty } => {
                if !*dirty {
                    let better = match (func, best.as_ref()) {
                        (_, None) => true,
                        (AggFunc::Min, Some(b)) => v < b,
                        (AggFunc::Max, Some(b)) => v > b,
                        _ => unreachable!("MinMax accum only for min/max"),
                    };
                    if better {
                        *best = Some(v.clone());
                    }
                }
            }
        }
        self.contribs += 1;
        Ok(())
    }

    /// Retracts one contribution. Returns `Err` on numeric failure and
    /// `Ok(false)` when the state cannot absorb the retraction coherently
    /// (caller rebuilds).
    fn remove(&mut self, func: AggFunc, v: &Value) -> Result<bool, p2_value::ValueError> {
        if self.contribs == 0 {
            return Ok(false);
        }
        match &mut self.acc {
            Accum::Count => {}
            Accum::Sum { acc, non_int } => {
                let d = v.to_double()?;
                if !matches!(v, Value::Int(_)) {
                    if *non_int == 0 {
                        return Ok(false);
                    }
                    *non_int -= 1;
                }
                *acc -= d;
            }
            Accum::Avg { acc } => *acc -= v.to_double()?,
            Accum::MinMax { best, dirty } => {
                if !*dirty {
                    // Removing anything not strictly worse than the current
                    // extremum (or incomparable to it) invalidates it.
                    let safe = match (func, best.as_ref()) {
                        (_, None) => false,
                        (AggFunc::Min, Some(b)) => {
                            matches!(v.partial_cmp(b), Some(std::cmp::Ordering::Greater))
                        }
                        (AggFunc::Max, Some(b)) => {
                            matches!(v.partial_cmp(b), Some(std::cmp::Ordering::Less))
                        }
                        _ => unreachable!("MinMax accum only for min/max"),
                    };
                    if !safe {
                        *dirty = true;
                    }
                }
            }
        }
        self.contribs -= 1;
        Ok(true)
    }

    /// The group's current aggregate value (`None` only transiently, for a
    /// dirty min/max before its rescan).
    fn value(&self, func: AggFunc) -> Option<Value> {
        match &self.acc {
            Accum::Count => Some(Value::Int(self.contribs as i64)),
            Accum::Sum { acc, non_int } => Some(if *non_int == 0 {
                Value::Int(*acc as i64)
            } else {
                Value::Double(*acc)
            }),
            Accum::Avg { acc } => {
                if self.contribs == 0 {
                    None
                } else {
                    Some(Value::Double(*acc / self.contribs as f64))
                }
            }
            Accum::MinMax { best, .. } => best.clone(),
        }
        .filter(|_| self.contribs > 0 || matches!(func, AggFunc::Count | AggFunc::Sum))
    }

    fn is_dirty(&self) -> bool {
        matches!(self.acc, Accum::MinMax { dirty: true, .. })
    }
}

/// Materialized aggregate over a table, re-emitted whenever it changes.
///
/// Implements rules whose body consists solely of a table and whose head
/// carries an aggregate (`succCount(NI, count<*>) :- succ(NI, S, SI)`).
/// The element subscribes to the table's [`TableDelta`] stream and, on
/// every poke (the planner routes the table's insert and delete deltas
/// here), drains the deltas accumulated since the last poke — including
/// expiry and eviction, which the recompute-era element only observed
/// indirectly — updates its per-group state in O(1) per delta, and emits
/// `out_name(group..., agg)` for groups whose value changed. Groups whose
/// last row vanished retract exactly as before: `count`/`sum` emit their
/// empty value (0) and the memo entry is dropped; `min`/`max`/`avg` are
/// silently forgotten so a re-appearance re-emits.
pub struct TableAgg {
    table: TableRef,
    sub: DeltaSubscription,
    func: AggFunc,
    agg_col: Option<usize>,
    group_cols: Vec<usize>,
    out_name: String,
    /// Incremental per-group state.
    groups: HashMap<Vec<Value>, GroupState>,
    /// Last emitted value per group (the change-detection memo).
    last: HashMap<Vec<Value>, Value>,
    /// Set when the incremental state must be rebuilt from a table scan
    /// (initial start, delta-queue overflow, or a numeric failure that the
    /// recompute semantics surface as "emit nothing until fixed").
    needs_rebuild: bool,
    /// Reused delta drain buffer.
    scratch: Vec<TableDelta>,
    /// Reused touched-group collection buffer.
    touched: Vec<Vec<Value>>,
}

impl TableAgg {
    /// Creates a materialized table aggregate (subscribing to the table's
    /// delta stream).
    pub fn new(
        table: TableRef,
        func: AggFunc,
        agg_col: Option<usize>,
        group_cols: Vec<usize>,
        out_name: impl Into<String>,
    ) -> TableAgg {
        let sub = table.lock().subscribe_deltas();
        Self::with_subscription(table, func, agg_col, group_cols, out_name, sub)
    }

    /// Like [`TableAgg::new`] but over an already-created subscription (the
    /// planner pools subscriptions per table at instantiation so each
    /// table is locked once, not once per consuming element).
    pub fn with_subscription(
        table: TableRef,
        func: AggFunc,
        agg_col: Option<usize>,
        group_cols: Vec<usize>,
        out_name: impl Into<String>,
        sub: DeltaSubscription,
    ) -> TableAgg {
        TableAgg {
            table,
            sub,
            func,
            agg_col,
            group_cols,
            out_name: out_name.into(),
            groups: HashMap::new(),
            last: HashMap::new(),
            needs_rebuild: true,
            scratch: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// The maintained `(group, aggregate)` pairs, sorted by group key.
    /// Exposed for the equivalence property tests and diagnostics; matches
    /// `Table::aggregate` output exactly.
    pub fn current(&self) -> Vec<(Vec<Value>, Value)> {
        let mut out: Vec<(Vec<Value>, Value)> = self
            .groups
            .iter()
            .filter_map(|(k, s)| s.value(self.func).map(|v| (k.clone(), v)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Splits a delta tuple into its group key and contribution, exactly
    /// like one `Table::aggregate` fold step; `None` when the row does not
    /// participate in this aggregate at all.
    fn classify<'t>(&self, tuple: &'t Tuple) -> Option<(Vec<Value>, &'t Value)> {
        let key = extract(tuple, &self.group_cols)?;
        let contribution = match self.agg_col {
            Some(c) => tuple.get(c).ok()?,
            None => &Value::Int(1),
        };
        Some((key, contribution))
    }

    /// Rebuilds the incremental state from a full table scan, replicating
    /// `Table::aggregate`'s row filtering and error behaviour.
    fn build_states(
        &self,
        table: &p2_table::Table,
    ) -> Result<HashMap<Vec<Value>, GroupState>, p2_value::ValueError> {
        let mut groups: HashMap<Vec<Value>, GroupState> = HashMap::new();
        for tuple in table.scan_iter_counted() {
            let Some((key, contribution)) = self.classify(tuple) else {
                continue;
            };
            groups
                .entry(key)
                .or_insert_with(|| GroupState::new(self.func))
                .insert(self.func, contribution)?;
        }
        Ok(groups)
    }

    /// Applies drained deltas to the incremental state; `false` means the
    /// state is no longer coherent and must be rebuilt.
    fn apply_deltas(&mut self) -> bool {
        for i in 0..self.scratch.len() {
            let delta = &self.scratch[i];
            let Some((key, contribution)) = self.classify(&delta.tuple) else {
                continue;
            };
            if delta.kind.is_removal() {
                let Some(state) = self.groups.get_mut(&key) else {
                    return false; // retraction for an unknown group
                };
                match state.remove(self.func, contribution) {
                    Ok(true) => {}
                    Ok(false) | Err(_) => return false,
                }
                if state.contribs == 0 {
                    self.groups.remove(&key);
                }
            } else {
                let state = self
                    .groups
                    .entry(key.clone())
                    .or_insert_with(|| GroupState::new(self.func));
                if state.insert(self.func, contribution).is_err() {
                    return false;
                }
            }
            self.touched.push(key);
        }
        true
    }

    /// Rebuilds the extremum of every dirty min/max group in one batched
    /// table rescan (the recompute-on-retraction fallback).
    fn rescan_dirty(&mut self, table: &p2_table::Table) {
        let dirty: HashSet<Vec<Value>> = self
            .groups
            .iter()
            .filter(|(_, s)| s.is_dirty())
            .map(|(k, _)| k.clone())
            .collect();
        if dirty.is_empty() {
            return;
        }
        let mut fresh: HashMap<Vec<Value>, GroupState> = HashMap::new();
        for tuple in table.scan_iter_counted() {
            let Some((key, contribution)) = self.classify(tuple) else {
                continue;
            };
            if !dirty.contains(&key) {
                continue;
            }
            // Min/max contributions never fail to accumulate (comparison
            // only), so the error arm is unreachable in practice.
            let _ = fresh
                .entry(key)
                .or_insert_with(|| GroupState::new(self.func))
                .insert(self.func, contribution);
        }
        for key in dirty {
            match fresh.remove(&key) {
                Some(state) => {
                    self.groups.insert(key, state);
                }
                None => {
                    self.groups.remove(&key);
                }
            }
        }
    }

    /// Catches up on the table's delta stream and emits every group whose
    /// aggregate changed. The emission contract matches the recompute-era
    /// element: per sync, vanished and changed groups come out in one
    /// deterministic (sorted) pass.
    fn sync(&mut self, ctx: &mut ElementCtx<'_>) {
        // Quiet fast path: nothing pending means no group changed since
        // the last sync — one atomic load instead of a lock/drain.
        if !self.needs_rebuild && !self.sub.has_pending() {
            return;
        }
        // Past the quiet check there are deltas (or a rebuild) to fold into
        // the group states: this poke does real maintenance work.
        ctx.note_state_change();
        self.touched.clear();
        {
            // The guard borrows a local clone of the `Arc`, not `self`, so
            // the state-maintenance methods below can borrow `self` freely
            // while the table stays locked.
            let table = self.table.clone();
            let mut guard = table.lock();
            if guard.drain_deltas(&self.sub, &mut self.scratch) {
                self.needs_rebuild = true;
                guard.note_rebuild();
                self.scratch.clear();
            }
            if !self.needs_rebuild && !self.apply_deltas() {
                self.needs_rebuild = true;
                guard.note_rebuild();
            }
            self.scratch.clear();
            if self.needs_rebuild {
                match self.build_states(&guard) {
                    Ok(groups) => {
                        self.groups = groups;
                        self.needs_rebuild = false;
                        // Every known or previously emitted group must be
                        // re-examined after a rebuild.
                        self.touched.clear();
                        self.touched.extend(self.groups.keys().cloned());
                        self.touched.extend(self.last.keys().cloned());
                    }
                    Err(_) => {
                        // Matches `recompute`'s behaviour on aggregation
                        // errors: emit nothing, retry at the next poke.
                        return;
                    }
                }
            } else {
                self.rescan_dirty(&guard);
            }
        }

        // One deterministic pass over the touched groups.
        self.touched.sort();
        self.touched.dedup();
        let empty_value = self.func.apply(&[]).ok().flatten();
        for key in std::mem::take(&mut self.touched) {
            match self.groups.get(&key).and_then(|s| s.value(self.func)) {
                Some(agg) => {
                    if self.last.get(&key) != Some(&agg) {
                        self.last.insert(key.clone(), agg.clone());
                        let mut values = key;
                        values.push(agg);
                        ctx.emit(0, Tuple::new(&self.out_name, values));
                    }
                }
                None => {
                    // Vanished: retract if the group had ever been emitted.
                    if self.last.remove(&key).is_some() {
                        if let Some(v) = &empty_value {
                            let mut values = key;
                            values.push(v.clone());
                            ctx.emit(0, Tuple::new(&self.out_name, values));
                        }
                    }
                }
            }
        }
    }
}

/// Extracts the values at `cols`, or `None` if any column is out of range
/// (mirrors `Table::aggregate`'s row filtering).
fn extract(tuple: &Tuple, cols: &[usize]) -> Option<Vec<Value>> {
    cols.iter()
        .map(|&c| tuple.get(c).ok().cloned())
        .collect::<Option<Vec<Value>>>()
}

impl Element for TableAgg {
    fn class(&self) -> &'static str {
        "TableAgg"
    }

    fn push(&mut self, _port: usize, _tuple: &Tuple, ctx: &mut ElementCtx<'_>) {
        self.sync(ctx);
    }

    fn on_start(&mut self, ctx: &mut ElementCtx<'_>) {
        self.sync(ctx);
    }

    /// A poke only does work when the delta subscription has pending
    /// deltas (or a rebuild is owed) — exactly the condition `sync`'s
    /// quiet fast path checks before touching any state. The pending flag
    /// is a lock-free atomic, so the guard costs one load.
    fn would_wake(&self, _port: usize, _tuple: &Tuple, _eval: &mut EvalContext) -> bool {
        self.needs_rebuild || self.sub.has_pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{Collector, Demux};
    use crate::engine::{Engine, Graph, Route};
    use p2_pel::{BinOp, Expr, IntervalKind};
    use p2_table::{Table, TableSpec};
    use p2_value::{SimTime, TupleBuilder, Uint160};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn table(spec: TableSpec, rows: Vec<Tuple>) -> TableRef {
        let mut t = Table::new(spec);
        for r in rows {
            t.insert(r, SimTime::ZERO).unwrap();
        }
        Arc::new(Mutex::new(t))
    }

    fn run_one(element: Box<dyn Element>, inputs: Vec<Tuple>) -> Vec<Tuple> {
        let mut g = Graph::new();
        let e = g.add("elt", element);
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(e, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: e,
            port: 0,
        });
        engine.start(SimTime::ZERO);
        for i in inputs {
            engine.deliver(i, SimTime::from_secs(1));
        }
        let out = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        out
    }

    #[test]
    fn insert_stores_and_emits_delta() {
        let t = table(TableSpec::new("succ", vec![1]), vec![]);
        let insert = Insert::new(t.clone());
        let tup = TupleBuilder::new("succ")
            .push("n1")
            .push(5i64)
            .push("n5")
            .build();
        let out = run_one(Box::new(insert), vec![tup.clone()]);
        assert_eq!(out, vec![tup]);
        assert_eq!(t.lock().len(), 1);
    }

    #[test]
    fn insert_emits_evictions_on_port_one() {
        let t = table(TableSpec::new("succ", vec![1]).with_max_size(1), vec![]);
        let mut g = Graph::new();
        let e = g.add("insert", Box::new(Insert::new(t.clone())));
        let (c, evicted_buf) = Collector::new();
        let c = g.add("evicted", Box::new(c));
        g.connect(e, 1, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: e,
            port: 0,
        });
        for s in [5i64, 9] {
            let tup = TupleBuilder::new("succ")
                .push("n1")
                .push(s)
                .push("x")
                .build();
            engine.deliver(tup, SimTime::from_secs(s as u64));
        }
        assert_eq!(t.lock().len(), 1);
        assert_eq!(evicted_buf.lock().len(), 1);
    }

    #[test]
    fn delete_removes_and_emits() {
        let row = TupleBuilder::new("neighbor").push("n1").push("n2").build();
        let t = table(TableSpec::new("neighbor", vec![1]), vec![row.clone()]);
        let delete = Delete::new(t.clone());
        let out = run_one(Box::new(delete), vec![row.clone()]);
        assert_eq!(out, vec![row]);
        assert!(t.lock().is_empty());
    }

    #[test]
    fn agg_probe_min_distance_like_chord_lookup() {
        // finger(NI, I, B, BI) rows; the event is lookup(NI, K, R, E) and we
        // aggregate D := K - B - 1 over fingers with B in (N, K).
        let fingers = vec![
            TupleBuilder::new("finger")
                .push("n1")
                .push(0i64)
                .push(Value::Id(Uint160::from_u64(10)))
                .push("n10")
                .build(),
            TupleBuilder::new("finger")
                .push("n1")
                .push(1i64)
                .push(Value::Id(Uint160::from_u64(40)))
                .push("n40")
                .build(),
            TupleBuilder::new("finger")
                .push("n1")
                .push(2i64)
                .push(Value::Id(Uint160::from_u64(90)))
                .push("n90")
                .build(),
        ];
        let t = table(TableSpec::new("finger", vec![2]), fingers);
        // Event tuple layout: (NI, K, R, E, N) — K at 1, N at 4.
        // Joined layout appends finger fields: I at 6, B at 7, BI at 8.
        let filter = Program::compile(&Expr::Interval {
            kind: IntervalKind::OpenOpen,
            value: Box::new(Expr::Field(7)),
            low: Box::new(Expr::Field(4)),
            high: Box::new(Expr::Field(1)),
        });
        let agg = Program::compile(&Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Sub, Expr::Field(1), Expr::Field(7)),
            Expr::int(1),
        ));
        let probe = AggProbe::new(t, 4, AggFunc::Min, Some(filter), agg, "bestLookupDist");
        let event = TupleBuilder::new("lookup_node")
            .push("n1")
            .push(Value::Id(Uint160::from_u64(70)))
            .push("n1")
            .push(123i64)
            .push(Value::Id(Uint160::from_u64(5)))
            .build();
        let out = run_one(Box::new(probe), vec![event]);
        assert_eq!(out.len(), 1);
        let got = &out[0];
        assert_eq!(got.name(), "bestLookupDist");
        // event (5 fields) ++ witness finger row (4 fields) ++ aggregate.
        assert_eq!(got.arity(), 10);
        // Fingers 10 and 40 are in (5, 70); min distance is 70-40-1 = 29,
        // achieved by the finger pointing at n40.
        assert_eq!(got.field(9), &Value::Id(Uint160::from_u64(29)));
        assert_eq!(got.field(8), &Value::str("n40"));
        assert_eq!(got.field(7), &Value::Id(Uint160::from_u64(40)));
    }

    #[test]
    fn agg_probe_max_picks_witness_row() {
        // Narada P0: pick the member with the maximum random number. Here we
        // use a deterministic "score" column instead of f_rand().
        let members = vec![
            TupleBuilder::new("member")
                .push("n1")
                .push("m1")
                .push(3i64)
                .build(),
            TupleBuilder::new("member")
                .push("n1")
                .push("m2")
                .push(9i64)
                .build(),
            TupleBuilder::new("member")
                .push("n1")
                .push("m3")
                .push(5i64)
                .build(),
        ];
        let t = table(TableSpec::new("member", vec![2]), members);
        // Event: (X, E); joined row starts at field 2, score at field 4.
        let agg = Program::compile(&Expr::Field(4));
        let probe = AggProbe::new(t, 3, AggFunc::Max, None, agg, "pingEvent");
        let event = TupleBuilder::new("periodic").push("n1").push(77i64).build();
        let out = run_one(Box::new(probe), vec![event]);
        assert_eq!(out.len(), 1);
        // Witness row is m2 (score 9).
        assert_eq!(out[0].field(3), &Value::str("m2"));
        assert_eq!(out[0].field(5), &Value::Int(9));
    }

    #[test]
    fn agg_probe_count_emits_zero_and_min_does_not() {
        let t = table(TableSpec::new("member", vec![1]), vec![]);
        let agg = Program::compile(&Expr::Field(0));
        let probe = AggProbe::new(t.clone(), 3, AggFunc::Count, None, agg, "membersFound");
        let event = TupleBuilder::new("refresh").push("n1").build();
        let out = run_one(Box::new(probe), vec![event.clone()]);
        assert_eq!(out.len(), 1);
        // event (1) ++ null row padding (3) ++ count.
        assert_eq!(out[0].arity(), 5);
        assert_eq!(out[0].field(1), &Value::Null);
        assert_eq!(out[0].field(4), &Value::Int(0));

        let agg = Program::compile(&Expr::Field(0));
        let probe = AggProbe::new(t, 3, AggFunc::Min, None, agg, "best");
        assert!(run_one(Box::new(probe), vec![event]).is_empty());
    }

    /// Chord L2 shapes for the incremental-probe equivalence tests: event
    /// layout (NI, K, R, E, N), finger layout (NI, I, B, BI); joined B is
    /// field 7, the filter is B in (N, K) and the aggregate K - B - 1.
    fn chord_filter() -> Program {
        Program::compile(&Expr::Interval {
            kind: IntervalKind::OpenOpen,
            value: Box::new(Expr::Field(7)),
            low: Box::new(Expr::Field(4)),
            high: Box::new(Expr::Field(1)),
        })
    }

    fn chord_agg() -> Program {
        Program::compile(&Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Sub, Expr::Field(1), Expr::Field(7)),
            Expr::int(1),
        ))
    }

    fn finger(b: u64, bi: &str) -> Tuple {
        TupleBuilder::new("finger")
            .push("n1")
            .push(0i64)
            .push(Value::Id(Uint160::from_u64(b)))
            .push(bi)
            .build()
    }

    fn lookup(k: u64, n: u64) -> Tuple {
        TupleBuilder::new("lookup_node")
            .push("n1")
            .push(Value::Id(Uint160::from_u64(k)))
            .push("n1")
            .push(123i64)
            .push(Value::Id(Uint160::from_u64(n)))
            .build()
    }

    /// A scan-path probe and a delta-fed probe over two identically
    /// mutated tables; every poke goes to both and the outputs must match
    /// tuple-for-tuple.
    struct ProbePair {
        tables: [TableRef; 2],
        engines: [Engine; 2],
        bufs: [crate::elements::CollectorHandle; 2],
    }

    impl ProbePair {
        fn new(spec: TableSpec) -> ProbePair {
            let mk = |incremental: bool| {
                let t = table(spec.clone(), vec![]);
                let probe = if incremental {
                    AggProbe::new_incremental(
                        t.clone(),
                        4,
                        AggFunc::Min,
                        Some(chord_filter()),
                        chord_agg(),
                        "bestLookupDist",
                    )
                } else {
                    AggProbe::new(
                        t.clone(),
                        4,
                        AggFunc::Min,
                        Some(chord_filter()),
                        chord_agg(),
                        "bestLookupDist",
                    )
                };
                assert_eq!(probe.is_incremental(), incremental);
                let mut g = Graph::new();
                let e = g.add("probe", Box::new(probe));
                let (c, buf) = Collector::new();
                let c = g.add("tap", Box::new(c));
                g.connect(e, 0, c, 0);
                let mut engine = Engine::new(g, "n1", 1);
                engine.set_entry(Route {
                    element: e,
                    port: 0,
                });
                engine.start(SimTime::ZERO);
                (t, engine, buf)
            };
            let (t0, e0, b0) = mk(false);
            let (t1, e1, b1) = mk(true);
            ProbePair {
                tables: [t0, t1],
                engines: [e0, e1],
                bufs: [b0, b1],
            }
        }

        fn mutate(&self, f: impl Fn(&mut Table)) {
            for t in &self.tables {
                f(&mut t.lock());
            }
        }

        fn poke(&mut self, event: Tuple, at: SimTime) {
            for e in &mut self.engines {
                e.deliver(event.clone(), at);
            }
        }

        fn assert_outputs_match(&self) {
            let dump = |b: &crate::elements::CollectorHandle| -> Vec<Tuple> {
                b.lock().iter().map(|(_, t)| t.clone()).collect()
            };
            let scan = dump(&self.bufs[0]);
            let inc = dump(&self.bufs[1]);
            assert_eq!(scan, inc, "delta-fed probe diverged from scan probe");
            assert!(!scan.is_empty(), "vacuous equivalence: nothing emitted");
        }
    }

    /// The delta-fed probe must match the scan probe bit-for-bit across
    /// every table mutation kind: insert, replace, delete, expire, evict.
    #[test]
    fn agg_probe_incremental_matches_scan_across_mutations() {
        let spec = TableSpec::new("finger", vec![2])
            .with_lifetime_secs(100)
            .with_max_size(4);
        let mut pair = ProbePair::new(spec);

        pair.mutate(|t| {
            for (b, bi) in [(10, "n10"), (40, "n40"), (90, "n90")] {
                t.insert(finger(b, bi), SimTime::from_secs(1)).unwrap();
            }
        });
        pair.poke(lookup(70, 5), SimTime::from_secs(2));

        // Insert a better finger: same event class must pick it up.
        pair.mutate(|t| {
            t.insert(finger(60, "n60"), SimTime::from_secs(3)).unwrap();
        });
        pair.poke(lookup(70, 5), SimTime::from_secs(3));

        // Replace (same key B=60, new BI): Delete+Insert under one RowId.
        pair.mutate(|t| {
            t.insert(finger(60, "n60b"), SimTime::from_secs(4)).unwrap();
        });
        pair.poke(lookup(70, 5), SimTime::from_secs(4));

        // Delete the current winner.
        pair.mutate(|t| {
            t.delete_matching(&finger(60, "n60b")).unwrap();
        });
        pair.poke(lookup(70, 5), SimTime::from_secs(5));

        // A different event class (different K, N) in the same run.
        pair.poke(lookup(100, 20), SimTime::from_secs(6));

        // Eviction: the table caps at 4 rows.
        pair.mutate(|t| {
            for (b, bi) in [(20, "n20"), (30, "n30"), (50, "n50")] {
                t.insert(finger(b, bi), SimTime::from_secs(7)).unwrap();
            }
        });
        pair.poke(lookup(70, 5), SimTime::from_secs(8));

        // Expiry: everything inserted before t=7 ages out at t=105.
        pair.mutate(|t| {
            t.expire(SimTime::from_secs(105));
        });
        pair.poke(lookup(70, 5), SimTime::from_secs(106));

        pair.assert_outputs_match();
        // The observable perf contract: the scan probe pays one full scan
        // per event; the delta-fed probe only scanned to build its mirror.
        let scan_scans = pair.tables[0].lock().stats().full_scans;
        let inc_scans = pair.tables[1].lock().stats().full_scans;
        assert_eq!(scan_scans, 7);
        assert_eq!(inc_scans, 1, "delta path should not rescan per event");
    }

    /// Overflowing the delta log between pokes forces a mirror rebuild
    /// (counted in `TableStats::rebuilds`) and still matches the scan.
    #[test]
    fn agg_probe_overflow_rebuilds_and_matches() {
        let mut pair = ProbePair::new(TableSpec::new("finger", vec![2]));
        pair.mutate(|t| {
            t.insert(finger(40, "n40"), SimTime::from_secs(1)).unwrap();
        });
        pair.poke(lookup(70, 5), SimTime::from_secs(2));

        pair.mutate(|t| {
            for i in 0..(p2_table::DELTA_LOG_CAP as u64 + 8) {
                // Distinct keys: every insert is a fresh delta.
                t.insert(finger(1000 + i, "bulk"), SimTime::from_secs(3))
                    .unwrap();
            }
            t.delete_matching(&finger(40, "n40")).unwrap();
            t.insert(finger(30, "n30"), SimTime::from_secs(3)).unwrap();
        });
        pair.poke(lookup(70, 5), SimTime::from_secs(4));

        pair.assert_outputs_match();
        assert_eq!(pair.tables[1].lock().stats().rebuilds, 1);
        assert_eq!(pair.tables[0].lock().stats().rebuilds, 0);
    }

    /// More event classes than `MAX_PROBE_GROUPS`: stale groups are
    /// LRU-evicted and rebuilt from the in-memory mirror — correct
    /// answers, still no table rescans.
    #[test]
    fn agg_probe_lru_rebuilds_groups_from_mirror() {
        let mut pair = ProbePair::new(TableSpec::new("finger", vec![2]));
        pair.mutate(|t| {
            for b in [10u64, 40, 90] {
                t.insert(finger(b, "x"), SimTime::from_secs(1)).unwrap();
            }
        });
        // 12 distinct (K, N) classes overflow the 8-entry group cache,
        // then the first class comes back after being evicted.
        for k in 0..12u64 {
            pair.poke(lookup(60 + k, 5), SimTime::from_secs(2 + k));
        }
        pair.poke(lookup(60, 5), SimTime::from_secs(20));

        pair.assert_outputs_match();
        assert_eq!(pair.tables[1].lock().stats().full_scans, 1);
    }

    #[test]
    fn table_agg_emits_only_on_change() {
        let t = table(TableSpec::new("succ", vec![1]), vec![]);
        let mut g = Graph::new();
        let ins = g.add("insert", Box::new(Insert::new(t.clone())));
        let agg = g.add(
            "count",
            Box::new(TableAgg::new(
                t.clone(),
                AggFunc::Count,
                None,
                vec![0],
                "succCount",
            )),
        );
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(ins, 0, agg, 0);
        g.connect(agg, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: ins,
            port: 0,
        });
        engine.start(SimTime::ZERO);

        let s1 = TupleBuilder::new("succ")
            .push("n1")
            .push(5i64)
            .push("n5")
            .build();
        engine.deliver(s1.clone(), SimTime::from_secs(1));
        // Re-inserting the identical tuple does not change the count, so no
        // new aggregate is emitted.
        engine.deliver(s1, SimTime::from_secs(2));
        let s2 = TupleBuilder::new("succ")
            .push("n1")
            .push(9i64)
            .push("n9")
            .build();
        engine.deliver(s2, SimTime::from_secs(3));

        let emitted: Vec<Tuple> = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(emitted.len(), 2);
        assert_eq!(emitted[0].values(), &[Value::str("n1"), Value::Int(1)]);
        assert_eq!(emitted[1].values(), &[Value::str("n1"), Value::Int(2)]);
    }

    /// Regression: when every row of a group is deleted, the materialized
    /// aggregate must emit the empty-group value (count 0) instead of
    /// keeping the stale last value forever, and must forget the group so a
    /// re-appearance re-emits from scratch.
    #[test]
    fn table_agg_retracts_when_group_vanishes() {
        let t = table(TableSpec::new("succ", vec![1]), vec![]);
        let mut g = Graph::new();
        // "succ" tuples insert, "zap" tuples (same layout) delete — the
        // planner's insert-delta and delete-delta wiring in miniature.
        let demux = g.add(
            "demux",
            Box::new(Demux::new(vec!["succ".into(), "zap".into()])),
        );
        let ins = g.add("insert", Box::new(Insert::new(t.clone())));
        let del = g.add("delete", Box::new(Delete::new(t.clone())));
        let agg = g.add(
            "count",
            Box::new(TableAgg::new(
                t.clone(),
                AggFunc::Count,
                None,
                vec![0],
                "succCount",
            )),
        );
        let (c, buf) = Collector::new();
        let c = g.add("tap", Box::new(c));
        g.connect(demux, 0, ins, 0);
        g.connect(demux, 1, del, 0);
        g.connect(ins, 0, agg, 0);
        g.connect(del, 0, agg, 0);
        g.connect(agg, 0, c, 0);
        let mut engine = Engine::new(g, "n1", 1);
        engine.set_entry(Route {
            element: demux,
            port: 0,
        });
        engine.start(SimTime::ZERO);

        let s1 = TupleBuilder::new("succ")
            .push("n1")
            .push(5i64)
            .push("n5")
            .build();
        engine.deliver(s1.clone(), SimTime::from_secs(1));
        let emitted: Vec<Tuple> = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(
            emitted.last().unwrap().values(),
            &[Value::str("n1"), Value::Int(1)]
        );

        // Delete the only row: the group vanishes and the aggregate must
        // report a count of zero, not stay silent at the stale 1.
        let zap = TupleBuilder::new("zap")
            .push("n1")
            .push(5i64)
            .push("n5")
            .build();
        engine.deliver(zap, SimTime::from_secs(2));
        assert!(t.lock().is_empty(), "delete did not remove the row");
        let emitted: Vec<Tuple> = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(
            emitted.last().unwrap().values(),
            &[Value::str("n1"), Value::Int(0)],
            "vanished group did not retract: {emitted:?}"
        );

        // Re-inserting the row re-emits count 1 (the group was dropped from
        // the memo, not left pinned at a stale value).
        engine.deliver(s1, SimTime::from_secs(3));
        let emitted: Vec<Tuple> = buf.lock().iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(
            emitted.last().unwrap().values(),
            &[Value::str("n1"), Value::Int(1)]
        );
    }
}
